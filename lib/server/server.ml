(** The DART repair service.

    Threading model (see DESIGN.md §6; failure model in §7):

    {ul
    {- the {e accept loop} runs on one thread: [select] on the listening
       socket plus a self-pipe (so signals and {!stop} wake it), accepts
       connections, and sweeps expired sessions once a second;}
    {- each connection gets a lightweight {e I/O thread} that reads
       frames, parses requests and writes responses — it never does
       solver work;}
    {- heavy requests (acquire/detect/repair/session solves) are
       submitted to a fixed-size {e domain worker pool} ({!Pool}); a full
       queue yields an immediate [busy] error (backpressure) and a
       request whose [deadline_ms] passes before completion yields
       [deadline_exceeded];}
    {- [SIGINT]/[SIGTERM] (or a [shutdown] request) trigger a graceful
       stop: stop accepting, answer [shutting_down] to new frames, drain
       in-flight work, then join the pool.}}

    Within one [repair] or session re-solve, independent connected
    components of the ground system also fan out over the same pool via
    {!Solver.mapper}, so a single big request still uses every domain. *)

open Dart_relational
open Dart_constraints
open Dart
module Obs = Dart_obs.Obs
module Json = Obs.Json
module Cancel = Dart_resilience.Cancel
module Faultsim = Dart_faultsim.Faultsim
module Solver = Dart_repair.Solver

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

type config = {
  addr : Proto.addr;
  domains : int;                  (** worker pool size (>= 1) *)
  queue_capacity : int;           (** bounded job queue -> [busy] beyond *)
  session_ttl_s : float;          (** idle sessions evicted after this *)
  max_sessions : int;
  max_frame_bytes : int;
  idle_timeout_s : float;         (** close connections idle this long *)
  drain_timeout_s : float;        (** max wait for in-flight work on stop *)
  max_nodes : int;                (** branch & bound budget per component *)
  max_iterations : int;           (** validation loop guard per session *)
  cancel_grace_ms : float;        (** wait this long after firing a running
                                      job's cancel token before abandoning it *)
  faults : Faultsim.t;            (** chaos-testing fault plan (default none) *)
  scenarios : (string * Scenario.t) list;
}

let default_config ?(scenarios = []) addr =
  { addr;
    domains = max 1 (min 8 (Domain.recommended_domain_count () - 1));
    queue_capacity = 64; session_ttl_s = 600.0; max_sessions = 256;
    max_frame_bytes = 16 * 1024 * 1024; idle_timeout_s = 300.0;
    drain_timeout_s = 30.0; max_nodes = 2_000_000; max_iterations = 50;
    cancel_grace_ms = 200.0; faults = Faultsim.none; scenarios }

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let m_requests = Obs.Metrics.counter "server.requests"
let m_errors = Obs.Metrics.counter "server.errors"
let m_busy = Obs.Metrics.counter "server.busy_rejections"
let m_deadline = Obs.Metrics.counter "server.deadline_exceeded"
let m_conn_total = Obs.Metrics.counter "server.connections_total"
let g_connections = Obs.Metrics.gauge "server.connections"
let g_queue_depth = Obs.Metrics.gauge "server.queue_depth"
let g_sessions = Obs.Metrics.gauge "server.sessions"
let h_latency = Obs.Metrics.histogram "server.latency_ms"

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type t = {
  cfg : config;
  pool : Pool.t;
  store : Session.Store.t;
  stopping : bool Atomic.t;
  active_conns : int Atomic.t;
  started_at_ms : float;
  wake_r : Unix.file_descr;       (* self-pipe: wakes the accept select *)
  wake_w : Unix.file_descr;
  mutable listen_fd : Unix.file_descr option;
  mutable accept_thread : Thread.t option;
}

let create cfg =
  if cfg.scenarios = [] then invalid_arg "Server.create: no scenarios registered";
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  { cfg;
    pool =
      Pool.create ~faults:cfg.faults ~domains:cfg.domains
        ~queue_capacity:cfg.queue_capacity ();
    store =
      Session.Store.create ~ttl_ms:(cfg.session_ttl_s *. 1000.0)
        ~max_sessions:cfg.max_sessions ();
    stopping = Atomic.make false; active_conns = Atomic.make 0;
    started_at_ms = Obs.now_ms (); wake_r; wake_w; listen_fd = None;
    accept_thread = None }

let stopping t = Atomic.get t.stopping

(** Request a graceful stop (idempotent, async-signal-safe). *)
let stop t =
  if not (Atomic.exchange t.stopping true) then
    (* Wake the accept loop; EAGAIN/EPIPE are fine (already awake/closed). *)
    try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with _ -> ()

let install_signal_handlers t =
  let handle = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle;
  (* A client vanishing mid-write must not kill the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* ------------------------------------------------------------------ *)
(* Request handlers                                                    *)
(* ------------------------------------------------------------------ *)

exception Reply of Json.t
(* Handlers raise [Reply] for early error exits; [dispatch] catches it. *)

let reply_error ?id code msg = raise (Reply (Proto.error ?id code msg))

let scenario_of t req =
  match Proto.string_field req.Proto.body "scenario" with
  | None -> reply_error ?id:req.Proto.id Proto.Bad_request "missing \"scenario\""
  | Some name ->
    (match List.assoc_opt name t.cfg.scenarios with
     | Some s -> s
     | None ->
       reply_error ?id:req.Proto.id Proto.Unknown_scenario
         (Printf.sprintf "unknown scenario %S (have: %s)" name
            (String.concat ", " (List.map fst t.cfg.scenarios))))

let format_of req =
  match Proto.string_field req.Proto.body "format" with
  | None | Some "html" -> Convert.Html
  | Some "csv" -> Convert.Csv
  | Some "tsv" -> Convert.Tsv
  | Some "fixed" -> Convert.Fixed_width
  | Some other ->
    reply_error ?id:req.Proto.id Proto.Bad_request
      (Printf.sprintf "unknown format %S (html|csv|tsv|fixed)" other)

let document_of req =
  match Proto.string_field req.Proto.body "document" with
  | Some d -> d
  | None -> reply_error ?id:req.Proto.id Proto.Bad_request "missing \"document\""

let acquire_db t ~cancel req =
  let scenario = scenario_of t req in
  let text = document_of req in
  let format = format_of req in
  (scenario, Pipeline.acquire scenario ~cancel ~format text)

let handle_acquire t ~cancel req =
  let _scenario, acq = acquire_db t ~cancel req in
  Proto.ok ?id:req.Proto.id
    [ ("relations", Proto.relations_json acq.Pipeline.db);
      ("rows_matched",
       Json.Int (List.length acq.Pipeline.extraction.Dart_wrapper.Extractor.instances));
      ("tuples", Json.Int (Database.cardinality acq.Pipeline.db)) ]

let handle_detect t ~cancel req =
  let scenario, acq = acquire_db t ~cancel req in
  let violated = Pipeline.detect scenario acq.Pipeline.db in
  Proto.ok ?id:req.Proto.id
    [ ("consistent", Json.Bool (violated = []));
      ("violations",
       Json.List
         (List.map
            (fun (k, thetas) ->
              Json.Obj
                [ ("constraint", Json.Str k.Agg_constraint.name);
                  ("groundings", Json.Int (List.length thetas)) ])
            violated)) ]

let handle_repair t ~cancel req =
  let scenario, acq = acquire_db t ~cancel req in
  let db = acq.Pipeline.db in
  let rows = Ground.of_constraints db scenario.Scenario.constraints in
  let result =
    Pipeline.repair ~mapper:(Pool.solver_mapper t.pool) ~max_nodes:t.cfg.max_nodes
      ~cancel scenario db
  in
  match result with
  | Solver.Cancelled _ ->
    (* Deadline fired and degradation had nothing to fall back to. *)
    Obs.Metrics.incr m_deadline;
    reply_error ?id:req.Proto.id Proto.Deadline_exceeded
      "deadline exceeded during solve"
  | result -> Proto.ok ?id:req.Proto.id (Proto.repair_fields ~rows db result)

(* The session summary common to open/decide/next responses. *)
let session_fields (s : Session.t) =
  let status, extra =
    match s.Session.phase with
    | Session.Proposing rho ->
      ("pending",
       [ ("pending", Json.Int (List.length (Session.pending_of s rho))) ])
    | Session.Converged db ->
      ("converged", [ ("relations", Proto.relations_json db) ])
    | Session.Failed why -> ("failed", [ ("reason", Json.Str why) ])
  in
  ("session", Json.Str s.Session.id) :: ("status", Json.Str status) :: extra
  @ [ ("iterations", Json.Int s.Session.iterations);
      ("examined", Json.Int s.Session.examined);
      ("pins", Json.Int (List.length s.Session.pins)) ]

let handle_session_open t ~cancel req =
  let scenario, acq = acquire_db t ~cancel req in
  let max_iterations =
    Option.value ~default:t.cfg.max_iterations
      (Proto.int_field req.Proto.body "max_iterations")
  in
  let id = Session.Store.fresh_id t.store in
  let s =
    Session.create ~id ~scenario ~db:acq.Pipeline.db ~max_nodes:t.cfg.max_nodes
      ~max_iterations ~mapper:(Pool.solver_mapper t.pool) ~cancel
      ~now_ms:(Obs.now_ms ()) ~ttl_ms:(Session.Store.ttl_ms t.store) ()
  in
  (match Session.Store.put t.store s with
   | Ok () -> ()
   | Error msg -> reply_error ?id:req.Proto.id Proto.Busy msg);
  Obs.Metrics.set g_sessions (float_of_int (Session.Store.count t.store));
  Proto.ok ?id:req.Proto.id (session_fields s)

let find_session t req =
  match Proto.string_field req.Proto.body "session" with
  | None -> reply_error ?id:req.Proto.id Proto.Bad_request "missing \"session\""
  | Some sid ->
    (match Session.Store.find t.store sid with
     | Some s -> s
     | None ->
       reply_error ?id:req.Proto.id Proto.Session_not_found
         (Printf.sprintf "session %S not found (closed or expired?)" sid))

let handle_session_next t req =
  let s = find_session t req in
  let updates = Session.pending s in
  Proto.ok ?id:req.Proto.id
    (session_fields s
     @ [ ("updates",
          Json.List (List.map (Proto.suggestion_json s.Session.db) updates)) ])

let handle_session_decide t ~cancel req =
  let s = find_session t req in
  let decisions =
    match Option.bind (Proto.member "decisions" req.Proto.body) Proto.as_list with
    | None ->
      reply_error ?id:req.Proto.id Proto.Bad_request "missing \"decisions\" array"
    | Some ds ->
      List.map
        (fun d ->
          match Proto.decision_of_json d with
          | Ok d -> d
          | Error msg -> reply_error ?id:req.Proto.id Proto.Bad_request msg)
        ds
  in
  match Session.decide ~mapper:(Pool.solver_mapper t.pool) ~cancel s decisions with
  | Ok _phase -> Proto.ok ?id:req.Proto.id (session_fields s)
  | Error msg -> reply_error ?id:req.Proto.id Proto.Bad_request msg

let handle_session_close t req =
  match Proto.string_field req.Proto.body "session" with
  | None -> reply_error ?id:req.Proto.id Proto.Bad_request "missing \"session\""
  | Some sid ->
    let existed = Session.Store.close t.store sid in
    Obs.Metrics.set g_sessions (float_of_int (Session.Store.count t.store));
    Proto.ok ?id:req.Proto.id [ ("closed", Json.Bool existed) ]

let handle_stats t req =
  Obs.Metrics.set g_queue_depth (float_of_int (Pool.depth t.pool));
  Obs.Metrics.set g_sessions (float_of_int (Session.Store.count t.store));
  Proto.ok ?id:req.Proto.id
    [ ("server",
       Json.Obj
         [ ("uptime_ms", Json.Float (Obs.elapsed_ms ~since:t.started_at_ms));
           ("domains", Json.Int (Pool.size t.pool));
           ("queue_depth", Json.Int (Pool.depth t.pool));
           ("connections", Json.Int (Atomic.get t.active_conns));
           ("sessions", Json.Int (Session.Store.count t.store)) ]);
      ("metrics", Obs.Metrics.snapshot ()) ]

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(* Heavy handlers run on the worker pool; the connection thread waits,
   polling cheaply, until completion or the request's deadline.

   Deadline handling is cooperative: the handler runs under a cancel
   token whose deadline mirrors [deadline_ms], so the solve aborts itself
   (degrading to an incumbent/greedy answer when it can) within
   milliseconds of the deadline.  The waiting thread additionally fires
   the token explicitly at the deadline — covering clock skew and jobs
   still queued — and only after [cancel_grace_ms] of unresponsiveness
   does it abandon the job (answering the client while the slot finishes
   in the background). *)
let run_on_pool t req handler =
  let cancel =
    match req.Proto.deadline_ms with
    | Some d -> Cancel.create ~deadline_ms:(Float.max 0.0 d) ()
    | None -> Cancel.none
  in
  let deadline =
    Option.map (fun d -> Obs.now_ms () +. Float.max 0.0 d) req.Proto.deadline_ms
  in
  match Pool.try_submit ~cancel t.pool (fun () -> handler t ~cancel req) with
  | None ->
    Obs.Metrics.incr m_busy;
    Proto.error ?id:req.Proto.id Proto.Busy
      (Printf.sprintf "worker queue full (%d jobs); retry later"
         t.cfg.queue_capacity)
  | Some fut ->
    Obs.Metrics.set g_queue_depth (float_of_int (Pool.depth t.pool));
    let deadline_error msg =
      Obs.Metrics.incr m_deadline;
      Proto.error ?id:req.Proto.id Proto.Deadline_exceeded msg
    in
    let rec wait ~grace =
      match Pool.poll fut with
      | `Done (Ok resp) -> resp
      | `Done (Error (Reply resp)) -> resp
      | `Done (Error Cancel.Cancelled) ->
        (* The token unwound a stage with no degradation path (e.g.
           acquisition); the worker slot is already free. *)
        deadline_error "deadline exceeded during solve"
      | `Done (Error (Faultsim.Injected_fault what)) ->
        (* Simulated infrastructure failure: transient by construction,
           so tell the client it is safe to retry. *)
        Proto.error ?id:req.Proto.id Proto.Busy
          (Printf.sprintf "busy: worker lost to injected fault (%s)" what)
      | `Done (Error e) ->
        Proto.error ?id:req.Proto.id Proto.Internal (Printexc.to_string e)
      | `Cancelled ->
        deadline_error "deadline exceeded while queued"
      | `Pending_or_running ->
        (match deadline with
         | Some d when Obs.now_ms () > d ->
           (match grace with
            | None ->
              (* First poll past the deadline: deschedule if still
                 queued (next poll sees [`Cancelled]); otherwise fire
                 the running job's token and give it a short grace
                 period to unwind cooperatively. *)
              if Pool.request_cancel fut then wait ~grace
              else wait ~grace:(Some (d +. t.cfg.cancel_grace_ms))
            | Some g when Obs.now_ms () > g ->
              (* The job ignored its token past the grace window (a
                 stuck stage): answer the client now and let the slot
                 finish in the background rather than hang the
                 connection. *)
              deadline_error "deadline exceeded during solve (job abandoned)"
            | Some _ ->
              Thread.delay 0.0005;
              wait ~grace)
         | _ ->
           Thread.delay 0.0005;
           wait ~grace)
    in
    wait ~grace:None

let dispatch t req =
  match req.Proto.op with
  | "ping" -> Proto.ok ?id:req.Proto.id [ ("pong", Json.Bool true) ]
  | "stats" -> handle_stats t req
  | "shutdown" ->
    stop t;
    Proto.ok ?id:req.Proto.id [ ("stopping", Json.Bool true) ]
  | "session/next" -> handle_session_next t req
  | "session/close" -> handle_session_close t req
  | "acquire" -> run_on_pool t req handle_acquire
  | "detect" -> run_on_pool t req handle_detect
  | "repair" -> run_on_pool t req handle_repair
  | "session/open" -> run_on_pool t req handle_session_open
  | "session/decide" -> run_on_pool t req handle_session_decide
  | other ->
    Proto.error ?id:req.Proto.id Proto.Unknown_op
      (Printf.sprintf "unknown op %S" other)

(* Parse one frame payload and produce the response document. *)
let process t payload =
  let t0 = Obs.now_ms () in
  let resp, op =
    match Json.of_string payload with
    | Error msg -> (Proto.error Proto.Parse_error msg, "<parse>")
    | Ok j ->
      (match Proto.request_of_json j with
       | Error msg -> (Proto.error ?id:(Proto.member "id" j) Proto.Parse_error msg, "<parse>")
       | Ok req ->
         let resp =
           Obs.span "server.request" ~attrs:[ ("op", Obs.Str req.Proto.op) ]
             (fun () ->
               try dispatch t req with
               | Reply resp -> resp
               | e -> Proto.error ?id:req.Proto.id Proto.Internal (Printexc.to_string e))
         in
         (resp, req.Proto.op))
  in
  Obs.Metrics.incr m_requests;
  let dt = Obs.elapsed_ms ~since:t0 in
  Obs.Metrics.observe h_latency dt;
  if not (Proto.response_ok resp) then Obs.Metrics.incr m_errors;
  if Obs.enabled () then
    Obs.log Obs.Debug "server.response"
      ~attrs:[ ("op", Obs.Str op); ("ms", Obs.Float dt) ];
  resp

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

(* Wait for the next frame in short select slices, so the thread notices
   [stop] promptly (bounded drain) while honouring the idle timeout.  The
   actual frame read only starts once bytes are available: a timeout
   mid-frame means the peer is trickling or stuck, and since a
   length-prefixed stream cannot be resynchronized we close rather than
   retry on a misaligned stream. *)
let read_request t fd =
  let idle_deadline = Obs.now_ms () +. (t.cfg.idle_timeout_s *. 1000.0) in
  let rec go () =
    if stopping t then `Stop
    else
      match Unix.select [ fd ] [] [] 0.5 with
      | [], _, _ -> if Obs.now_ms () > idle_deadline then `Idle else go ()
      | _ :: _, _, _ ->
        let budget_s =
          Float.max 0.05 ((idle_deadline -. Obs.now_ms ()) /. 1000.0)
        in
        (match Frame.read ~timeout:budget_s ~max_len:t.cfg.max_frame_bytes fd with
         | Ok payload -> `Request payload
         | Error Frame.Timeout -> `Idle
         | Error Frame.Eof -> `Eof
         | Error (Frame.Oversized n) -> `Oversized n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* An injected truncation leaves the stream unsynchronizable, exactly
   like a real short write before a crash: report failure so the
   connection closes. *)
let send t fd json =
  try Frame.write ~faults:t.cfg.faults fd (Json.to_string json); true
  with Unix.Unix_error _ | Sys_error _ | Faultsim.Injected_fault _ -> false

let handle_connection t fd =
  Obs.Metrics.incr m_conn_total;
  Obs.Metrics.set g_connections (float_of_int (Atomic.get t.active_conns));
  let rec serve () =
    match read_request t fd with
    | `Eof | `Idle -> ()
    | `Stop ->
      (* Refuse new work during drain, politely. *)
      ignore (send t fd (Proto.error Proto.Shutting_down "server is shutting down"))
    | `Oversized n ->
      (* The stream cannot be resynchronized after an untrusted length:
         answer once, then close. *)
      ignore
        (send t fd
           (Proto.error Proto.Oversized_frame
              (Printf.sprintf "frame of %d bytes exceeds limit %d" n
                 t.cfg.max_frame_bytes)))
    | `Request payload ->
      let resp = process t payload in
      (* After answering the in-flight request, a draining server closes
         instead of reading further frames. *)
      if send t fd resp && not (stopping t) then serve ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      ignore (Atomic.fetch_and_add t.active_conns (-1));
      Obs.Metrics.set g_connections (float_of_int (Atomic.get t.active_conns)))
    serve

(* ------------------------------------------------------------------ *)
(* Listening and lifecycle                                             *)
(* ------------------------------------------------------------------ *)

let bind_listener cfg =
  match cfg.addr with
  | Proto.Unix_sock path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 128;
    fd
  | Proto.Tcp (host, port) ->
    let inet =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 128;
    fd

(** The bound address — useful with [Tcp (host, 0)] (ephemeral port). *)
let bound_addr t =
  match t.listen_fd with
  | None -> t.cfg.addr
  | Some fd ->
    (match Unix.getsockname fd with
     | Unix.ADDR_UNIX path -> Proto.Unix_sock path
     | Unix.ADDR_INET (inet, port) -> Proto.Tcp (Unix.string_of_inet_addr inet, port))

let accept_loop t fd =
  let last_sweep = ref (Obs.now_ms ()) in
  let rec loop () =
    if stopping t then ()
    else begin
      (match Unix.select [ fd; t.wake_r ] [] [] 1.0 with
       | readable, _, _ ->
         if List.memq t.wake_r readable then begin
           let buf = Bytes.create 16 in
           ignore (try Unix.read t.wake_r buf 0 16 with Unix.Unix_error _ -> 0)
         end;
         if List.memq fd readable && not (stopping t) then begin
           match Unix.accept ~cloexec:true fd with
           | conn_fd, _ ->
             (match t.cfg.addr with
              | Proto.Tcp _ ->
                (try Unix.setsockopt conn_fd Unix.TCP_NODELAY true
                 with Unix.Unix_error _ -> ())
              | Proto.Unix_sock _ -> ());
             ignore (Atomic.fetch_and_add t.active_conns 1);
             ignore (Thread.create (fun () -> handle_connection t conn_fd) ())
           | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
         end
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      if Obs.elapsed_ms ~since:!last_sweep > 1000.0 then begin
        last_sweep := Obs.now_ms ();
        let evicted = Session.Store.sweep t.store in
        if evicted > 0 && Obs.enabled () then
          Obs.log Obs.Info "server.sessions_evicted"
            ~attrs:[ ("count", Obs.Int evicted) ];
        Obs.Metrics.set g_sessions (float_of_int (Session.Store.count t.store));
        Obs.Metrics.set g_queue_depth (float_of_int (Pool.depth t.pool))
      end;
      loop ()
    end
  in
  loop ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (match t.cfg.addr with
   | Proto.Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
   | Proto.Tcp _ -> ())

(** Bind and start accepting (non-blocking; see {!wait}). *)
let start t =
  if t.accept_thread <> None then invalid_arg "Server.start: already started";
  let fd = bind_listener t.cfg in
  t.listen_fd <- Some fd;
  if Obs.enabled () then
    Obs.log Obs.Info "server.listening"
      ~attrs:
        [ ("addr", Obs.Str (Proto.addr_to_string (bound_addr t)));
          ("domains", Obs.Int t.cfg.domains);
          ("queue", Obs.Int t.cfg.queue_capacity) ];
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t fd) ())

(** Wait for shutdown: joins the accept loop, drains connections (up to
    [drain_timeout_s]), then joins the worker pool. *)
let wait t =
  (match t.accept_thread with
   | None -> invalid_arg "Server.wait: not started"
   | Some th -> Thread.join th);
  let drain_deadline = Obs.now_ms () +. (t.cfg.drain_timeout_s *. 1000.0) in
  while Atomic.get t.active_conns > 0 && Obs.now_ms () < drain_deadline do
    Thread.delay 0.01
  done;
  Pool.shutdown t.pool;
  if Obs.enabled () then
    Obs.log Obs.Info "server.stopped"
      ~attrs:[ ("undrained_connections", Obs.Int (Atomic.get t.active_conns)) ]

(** [run t] = {!start} + {!wait}: serve until a signal / [shutdown]. *)
let run t =
  start t;
  wait t
