(** The DART repair service.

    Threading model (see DESIGN.md §6; failure model in §7):

    {ul
    {- the {e accept loop} runs on one thread: [select] on the listening
       socket plus a self-pipe (so signals and {!stop} wake it), accepts
       connections, and sweeps expired sessions once a second;}
    {- each connection gets a lightweight {e I/O thread} that reads
       frames, parses requests and writes responses — it never does
       solver work;}
    {- heavy requests (acquire/detect/repair/session solves) are
       submitted to a fixed-size {e domain worker pool} ({!Pool}); a full
       queue yields an immediate [busy] error (backpressure) and a
       request whose [deadline_ms] passes before completion yields
       [deadline_exceeded];}
    {- [SIGINT]/[SIGTERM] (or a [shutdown] request) trigger a graceful
       stop: stop accepting, answer [shutting_down] to new frames, drain
       in-flight work, then join the pool.}}

    Within one [repair] or session re-solve, independent connected
    components of the ground system also fan out over the same pool via
    {!Solver.mapper}, so a single big request still uses every domain. *)

open Dart_relational
open Dart_constraints
open Dart
module Obs = Dart_obs.Obs
module Json = Obs.Json
module Health = Dart_obs.Health
module Slo = Dart_obs.Slo
module Runtime = Dart_obs.Runtime
module Cancel = Dart_resilience.Cancel
module Overload = Dart_resilience.Overload
module Faultsim = Dart_faultsim.Faultsim
module Solver = Dart_repair.Solver
module Wal = Dart_durable.Wal

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

type config = {
  addr : Proto.addr;
  domains : int;                  (** worker pool size (>= 1) *)
  queue_capacity : int;           (** bounded job queue -> [busy] beyond *)
  session_ttl_s : float;          (** idle sessions evicted after this *)
  max_sessions : int;
  max_frame_bytes : int;
  idle_timeout_s : float;         (** close connections idle this long *)
  drain_timeout_s : float;        (** max wait for in-flight work on stop *)
  max_nodes : int;                (** branch & bound budget per component *)
  max_iterations : int;           (** validation loop guard per session *)
  cancel_grace_ms : float;        (** wait this long after firing a running
                                      job's cancel token before abandoning it *)
  faults : Faultsim.t;            (** chaos-testing fault plan (default none) *)
  telemetry_port : int option;    (** Prometheus text endpoint on 127.0.0.1
                                      (0 = ephemeral; see {!telemetry_addr}) *)
  flight_dir : string option;     (** enable the flight recorder and dump
                                      post-mortems for bad requests here *)
  flight_capacity : int;          (** ring size per domain (events) *)
  access_log : string option;     (** one JSON line per request, appended *)
  access_log_max_bytes : int;     (** rotate the access log once it exceeds
                                      this many bytes (0 = never rotate);
                                      one rotated generation ([FILE.1]) is
                                      kept *)
  data_dir : string option;       (** durable session WAL + snapshots live
                                      here; [None] = volatile sessions *)
  wal_shards : int;               (** WAL shard count for a fresh data dir
                                      (an existing dir's layout wins) *)
  snapshot_every : int;           (** snapshot + truncate a WAL shard after
                                      this many appended events *)
  solve_cache_mb : int;           (** process-wide solve cache budget in MB
                                      (0 disables; see {!Solver.Cache}) *)
  coalesce : bool;                (** single-flight identical in-flight
                                      [detect]/[repair] requests *)
  overload : bool;                (** adaptive admission control: shed
                                      doomed/over-limit work with a
                                      retryable [overloaded] error *)
  brownout : bool;                (** tighten per-request solver budgets
                                      as measured load climbs (see
                                      {!Overload.brownout_nodes}) *)
  target_queue_wait_ms : float;   (** queue wait the load controller
                                      treats as "full but healthy" *)
  client_rate : float;            (** per-client admissions/s once the
                                      server is browned out (level >= 1) *)
  client_burst : float;           (** per-client token bucket capacity *)
  frame_write_timeout_s : float;  (** per-frame write deadline: a peer
                                      that stops draining its socket is
                                      disconnected (slow-client armor) *)
  frame_read_timeout_s : float;   (** mid-frame read deadline once the
                                      first bytes of a frame arrived
                                      (slowloris armor) *)
  health_slo : bool;              (** run the ~1 Hz ops ticker: GC/runtime
                                      sampler + SLO burn-rate engine *)
  slo_availability_target : float; (** good-request fraction objective *)
  slo_latency_target : float;     (** fraction of repairs that must finish
                                      under [slo_latency_ms] *)
  slo_latency_ms : float;         (** repair latency objective threshold;
                                      should be a histogram bucket bound *)
  scenarios : (string * Scenario.t) list;
}

let default_config ?(scenarios = []) addr =
  { addr;
    domains = max 1 (min 8 (Domain.recommended_domain_count () - 1));
    queue_capacity = 64; session_ttl_s = 600.0; max_sessions = 256;
    max_frame_bytes = 16 * 1024 * 1024; idle_timeout_s = 300.0;
    drain_timeout_s = 30.0; max_nodes = 2_000_000; max_iterations = 50;
    cancel_grace_ms = 200.0; faults = Faultsim.none;
    telemetry_port = None; flight_dir = None; flight_capacity = 256;
    access_log = None; access_log_max_bytes = 64 * 1024 * 1024;
    data_dir = None; wal_shards = Dart_durable.Wal.default_shards;
    snapshot_every = 64;
    (* Cache off by default: in-process callers comparing wire responses
       against fresh solves (the byte-parity suite) must not see answers
       computed by an earlier test's instance.  The CLI turns it on. *)
    solve_cache_mb = 0; coalesce = true;
    overload = true; brownout = true; target_queue_wait_ms = 50.0;
    client_rate = 50.0; client_burst = 100.0;
    frame_write_timeout_s = 10.0; frame_read_timeout_s = 10.0;
    health_slo = true; slo_availability_target = 0.999;
    slo_latency_target = 0.99; slo_latency_ms = 1000.0; scenarios }

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let m_requests = Obs.Metrics.counter "server.requests"
let m_errors = Obs.Metrics.counter "server.errors"
let m_busy = Obs.Metrics.counter "server.busy_rejections"
let m_deadline = Obs.Metrics.counter "server.deadline_exceeded"
let m_conn_total = Obs.Metrics.counter "server.connections_total"
let m_bytes_in = Obs.Metrics.counter "server.bytes_in"
let m_bytes_out = Obs.Metrics.counter "server.bytes_out"
let m_flight_dumps = Obs.Metrics.counter "server.flight_dumps"
let m_coalesced = Obs.Metrics.counter "server.coalesced"
let m_shed = Obs.Metrics.counter "server.shed"
let m_slow_closes = Obs.Metrics.counter "server.slow_client_closes"
let g_brownout = Obs.Metrics.gauge "server.brownout_level"
let g_uptime = Obs.Metrics.gauge "server.uptime_s"
let g_retry_after = Obs.Metrics.gauge "server.retry_after_ms"
let g_connections = Obs.Metrics.gauge "server.connections"
let g_queue_depth = Obs.Metrics.gauge "server.queue_depth"
let g_sessions = Obs.Metrics.gauge "server.sessions"
let g_inflight = Obs.Metrics.gauge "server.inflight"
let h_latency = Obs.Metrics.histogram "server.latency_ms"
let h_queue_wait = Obs.Metrics.histogram "server.queue_wait_ms"

(* The same process-wide cell [Persist] bumps during recovery; fetched
   here so the stats verb can surface it without a Persist dependency on
   call sites that run volatile. *)
let c_recovered = Obs.Metrics.counter "sessions.recovered"

(* Per-verb latency histograms, registered lazily on first use so the
   registry only carries verbs the deployment actually serves.  Only the
   known dispatch verbs (plus "<parse>" for unparseable requests) get
   their own series; every other op shares one "unknown" bucket, so a
   client sending random op names cannot grow the registry — and the
   stats/Prometheus output — without bound. *)
let known_verbs =
  [ "ping"; "stats"; "metrics"; "shutdown"; "acquire"; "detect"; "repair";
    "session/open"; "session/next"; "session/decide"; "session/close";
    "<parse>" ]

let verb_hists : (string, Obs.Metrics.histogram) Hashtbl.t = Hashtbl.create 8
let verb_mu = Mutex.create ()

let verb_latency op =
  let op = if List.mem op known_verbs then op else "unknown" in
  Mutex.lock verb_mu;
  let h =
    match Hashtbl.find_opt verb_hists op with
    | Some h -> h
    | None ->
      let h = Obs.Metrics.histogram ("server.latency_ms." ^ op) in
      Hashtbl.add verb_hists op h;
      h
  in
  Mutex.unlock verb_mu;
  h

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

(* One in-flight coalescable solve.  The leader publishes its outcome;
   followers poll (OCaml's [Condition] has no timed wait, and followers
   must honour their own deadlines). *)
type flight_cell = {
  mutable outcome : [ `Pending | `Done of Json.t | `Failed ];
}

type t = {
  cfg : config;
  pool : Pool.t;
  store : Session.Store.t;
  persist : Persist.t option;
  mutable recovery : Persist.recovery option;
      (** populated by {!create} when [data_dir] is set *)
  flights : (string, flight_cell) Hashtbl.t;
  flights_mu : Mutex.t;
  ctrl : Overload.Controller.t;   (* EWMA load -> brownout level *)
  breaker : Overload.Breaker.t;   (* trips on sustained failure under load *)
  buckets : (string, Overload.Token_bucket.t) Hashtbl.t;
  buckets_mu : Mutex.t;           (* per-client admission buckets *)
  svc_mu : Mutex.t;
  mutable svc_ewma_ms : float;    (* smoothed handler service time, for the
                                     "is this request doomed?" estimate *)
  conn_seq : int Atomic.t;        (* fallback per-connection client ids *)
  stopping : bool Atomic.t;
  active_conns : int Atomic.t;
  inflight : int Atomic.t;        (* requests currently inside [process] *)
  heartbeat_ms : float Atomic.t;  (* last accept-loop iteration — /healthz
                                     liveness: is the event loop turning? *)
  mutable slo : Slo.t option;     (* burn-rate engine, when [health_slo] *)
  mutable ops_thread : Thread.t option; (* ~1 Hz runtime + SLO ticker *)
  started_at_ms : float;
  wake_r : Unix.file_descr;       (* self-pipe: wakes the accept select *)
  wake_w : Unix.file_descr;
  flight : (Obs.sink * (unit -> Obs.event list)) option;
  access_mu : Mutex.t;
  mutable access_oc : out_channel option;
  mutable access_bytes : int;     (* size of the current access-log file,
                                     tracked under [access_mu] to drive
                                     rotation without a stat per line *)
  mutable listen_fd : Unix.file_descr option;
  mutable accept_thread : Thread.t option;
  mutable telemetry_fd : Unix.file_descr option;
  mutable telemetry_thread : Thread.t option;
}

let create cfg =
  if cfg.scenarios = [] then invalid_arg "Server.create: no scenarios registered";
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  let flight =
    match cfg.flight_dir with
    | None -> None
    | Some dir ->
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> () | Unix.Unix_error _ -> ());
      let recorder = Obs.flight_recorder ~capacity:cfg.flight_capacity () in
      Obs.install (fst recorder);
      Some recorder
  in
  let access_oc =
    Option.map
      (fun path ->
        open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path)
      cfg.access_log
  in
  (* The solve cache is process-wide; the server owning the process
     decides its budget. *)
  Solver.Cache.set_budget_bytes (cfg.solve_cache_mb * 1024 * 1024);
  let t =
    { cfg;
      pool =
        Pool.create ~faults:cfg.faults ~domains:cfg.domains
          ~queue_capacity:cfg.queue_capacity ();
      store =
        Session.Store.create ~ttl_ms:(cfg.session_ttl_s *. 1000.0)
          ~max_sessions:cfg.max_sessions ();
      persist =
        Option.map
          (fun dir ->
            Persist.open_ ~shards:cfg.wal_shards
              ~snapshot_every:cfg.snapshot_every dir)
          cfg.data_dir;
      recovery = None;
      flights = Hashtbl.create 8; flights_mu = Mutex.create ();
      ctrl =
        Overload.Controller.create
          { Overload.Controller.default_config with
            target_queue_wait_ms = cfg.target_queue_wait_ms;
            inflight_target = 2 * max 1 cfg.domains };
      breaker = Overload.Breaker.create ();
      buckets = Hashtbl.create 16; buckets_mu = Mutex.create ();
      svc_mu = Mutex.create (); svc_ewma_ms = 0.0;
      conn_seq = Atomic.make 0;
      stopping = Atomic.make false; active_conns = Atomic.make 0;
      inflight = Atomic.make 0; heartbeat_ms = Atomic.make (Obs.now_ms ());
      slo = None; ops_thread = None;
      started_at_ms = Obs.now_ms (); wake_r; wake_w;
      flight; access_mu = Mutex.create (); access_oc;
      access_bytes =
        (match access_oc with Some oc -> out_channel_length oc | None -> 0);
      listen_fd = None;
      accept_thread = None; telemetry_fd = None; telemetry_thread = None }
  in
  (match t.persist with
   | Some p ->
     let r =
       Persist.recover p ~scenarios:cfg.scenarios
         ~mapper:(Pool.solver_mapper t.pool) ~max_nodes:cfg.max_nodes
         ~store:t.store
     in
     t.recovery <- Some r;
     Obs.Metrics.set g_sessions (float_of_int (Session.Store.count t.store))
   | None -> ());
  t

(** The crash-recovery summary, when {!create} replayed a data dir. *)
let recovery t = t.recovery

let stopping t = Atomic.get t.stopping

(** Request a graceful stop (idempotent, async-signal-safe). *)
let stop t =
  if not (Atomic.exchange t.stopping true) then
    (* Wake the accept loop; EAGAIN/EPIPE are fine (already awake/closed). *)
    try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with _ -> ()

let install_signal_handlers t =
  let handle = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle;
  (* A client vanishing mid-write must not kill the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* ------------------------------------------------------------------ *)
(* Request handlers                                                    *)
(* ------------------------------------------------------------------ *)

exception Reply of Json.t
(* Handlers raise [Reply] for early error exits; [dispatch] catches it. *)

(* Per-request bookkeeping that outlives the handler: the worker records
   how long the job sat queued and the repair handler records the final
   B&B gap; the access log reads both after the response is built.
   Atomic because the read can race the worker's write when a job is
   abandoned past [cancel_grace_ms] (the worker domain may still be
   running while the connection thread answers). *)
type req_meta = {
  queue_wait_ms : float option Atomic.t;
  gap : float option Atomic.t;
      (* worst final B&B gap of a repair solve — positive exactly when the
         answer was degraded (deadline/budget), i.e. "gap at deadline" *)
}

let reply_error ?id code msg = raise (Reply (Proto.error ?id code msg))

let scenario_of t req =
  match Proto.string_field req.Proto.body "scenario" with
  | None -> reply_error ?id:req.Proto.id Proto.Bad_request "missing \"scenario\""
  | Some name ->
    (match List.assoc_opt name t.cfg.scenarios with
     | Some s -> s
     | None ->
       reply_error ?id:req.Proto.id Proto.Unknown_scenario
         (Printf.sprintf "unknown scenario %S (have: %s)" name
            (String.concat ", " (List.map fst t.cfg.scenarios))))

let format_of req =
  match Proto.string_field req.Proto.body "format" with
  | None | Some "html" -> Convert.Html
  | Some "csv" -> Convert.Csv
  | Some "tsv" -> Convert.Tsv
  | Some "fixed" -> Convert.Fixed_width
  | Some other ->
    reply_error ?id:req.Proto.id Proto.Bad_request
      (Printf.sprintf "unknown format %S (html|csv|tsv|fixed)" other)

let document_of req =
  match Proto.string_field req.Proto.body "document" with
  | Some d -> d
  | None -> reply_error ?id:req.Proto.id Proto.Bad_request "missing \"document\""

let acquire_db t ~cancel req =
  let scenario = scenario_of t req in
  let text = document_of req in
  let format = format_of req in
  (scenario, Pipeline.acquire scenario ~cancel ~format text)

let handle_acquire t ~cancel req =
  let _scenario, acq = acquire_db t ~cancel req in
  Proto.ok ?id:req.Proto.id
    [ ("relations", Proto.relations_json acq.Pipeline.db);
      ("rows_matched",
       Json.Int (List.length acq.Pipeline.extraction.Dart_wrapper.Extractor.instances));
      ("tuples", Json.Int (Database.cardinality acq.Pipeline.db)) ]

let handle_detect t ~cancel req =
  let scenario, acq = acquire_db t ~cancel req in
  let violated = Pipeline.detect scenario acq.Pipeline.db in
  Proto.ok ?id:req.Proto.id
    [ ("consistent", Json.Bool (violated = []));
      ("violations",
       Json.List
         (List.map
            (fun (k, thetas) ->
              Json.Obj
                [ ("constraint", Json.Str k.Agg_constraint.name);
                  ("groundings", Json.Int (List.length thetas)) ])
            violated)) ]

(* The brownout ladder turns measured load into a per-request node
   budget: full effort at level 0, a pruned tree at 1, incumbent-only at
   2, straight to the greedy tier at 3+.  The quality drop is visible to
   the client through the existing [provenance] field.  Only stateless
   [repair] requests brown out; sessions keep the budget they were
   opened with (an operator mid-validation sees consistent proposals). *)
let effective_max_nodes t =
  if t.cfg.brownout then
    Overload.brownout_nodes ~max_nodes:t.cfg.max_nodes
      (Overload.Controller.level t.ctrl)
  else t.cfg.max_nodes

let handle_repair t meta ~cancel req =
  let scenario, acq = acquire_db t ~cancel req in
  let db = acq.Pipeline.db in
  let rows = Ground.of_constraints db scenario.Scenario.constraints in
  let result =
    Pipeline.repair ~mapper:(Pool.solver_mapper t.pool)
      ~max_nodes:(effective_max_nodes t) ~cancel scenario db
  in
  Atomic.set meta.gap
    (Option.bind (Solver.result_stats result) Solver.report_gap);
  match result with
  | Solver.Cancelled _ ->
    (* Deadline fired and degradation had nothing to fall back to. *)
    Obs.Metrics.incr m_deadline;
    reply_error ?id:req.Proto.id Proto.Deadline_exceeded
      "deadline exceeded during solve"
  | result -> Proto.ok ?id:req.Proto.id (Proto.repair_fields ~rows db result)

let phase_string = function
  | Session.Proposing _ -> "pending"
  | Session.Converged _ -> "converged"
  | Session.Failed _ -> "failed"

(* The session summary common to open/decide/next responses. *)
let session_fields (s : Session.t) =
  let status, extra =
    match s.Session.phase with
    | Session.Proposing rho ->
      ("pending",
       [ ("pending", Json.Int (List.length (Session.pending_of s rho))) ])
    | Session.Converged db ->
      ("converged", [ ("relations", Proto.relations_json db) ])
    | Session.Failed why -> ("failed", [ ("reason", Json.Str why) ])
  in
  ("session", Json.Str s.Session.id) :: ("status", Json.Str status) :: extra
  @ [ ("iterations", Json.Int s.Session.iterations);
      ("examined", Json.Int s.Session.examined);
      ("pins", Json.Int (List.length s.Session.pins)) ]

let handle_session_open t ~cancel req =
  let scenario, acq = acquire_db t ~cancel req in
  let max_iterations =
    Option.value ~default:t.cfg.max_iterations
      (Proto.int_field req.Proto.body "max_iterations")
  in
  let id = Session.Store.fresh_id t.store in
  let origin_trace =
    match Obs.Trace.current () with
    | Some ctx -> ctx.Obs.Trace.trace_id
    | None -> ""
  in
  let s =
    Session.create ~id ~origin_trace ~scenario ~db:acq.Pipeline.db
      ~max_nodes:t.cfg.max_nodes ~max_iterations
      ~mapper:(Pool.solver_mapper t.pool) ~cancel ~now_ms:(Obs.now_ms ())
      ~ttl_ms:(Session.Store.ttl_ms t.store) ()
  in
  (match Session.Store.put t.store s with
   | Ok () -> ()
   | Error msg -> reply_error ?id:req.Proto.id Proto.Busy msg);
  Obs.Metrics.set g_sessions (float_of_int (Session.Store.count t.store));
  (match t.persist with
   | Some p -> (
     try
       Persist.log_open p ~sid:id
         ~scenario:
           (Option.value ~default:""
              (Proto.string_field req.Proto.body "scenario"))
         ~format:
           (Option.value ~default:"html"
              (Proto.string_field req.Proto.body "format"))
         ~document:(document_of req) ~max_iterations ~origin_trace;
       Persist.log_phase p ~sid:id ~phase:(phase_string s.Session.phase)
     with Wal.Append_failed msg ->
       (* The session is not durable; do not hand out an id that a
          restart would forget.  Retryable: disk pressure may clear. *)
       ignore (Session.Store.close t.store id);
       Obs.Metrics.set g_sessions (float_of_int (Session.Store.count t.store));
       reply_error ?id:req.Proto.id Proto.Busy
         (Printf.sprintf "session log unavailable (%s); retry later" msg))
   | None -> ());
  Proto.ok ?id:req.Proto.id (session_fields s)

let find_session t req =
  match Proto.string_field req.Proto.body "session" with
  | None -> reply_error ?id:req.Proto.id Proto.Bad_request "missing \"session\""
  | Some sid ->
    (match Session.Store.find t.store sid with
     | Some s -> s
     | None ->
       reply_error ?id:req.Proto.id Proto.Session_not_found
         (Printf.sprintf "session %S not found (closed or expired?)" sid))

let handle_session_next t req =
  let s = find_session t req in
  let updates = Session.pending s in
  Proto.ok ?id:req.Proto.id
    (session_fields s
     @ [ ("updates",
          Json.List (List.map (Proto.suggestion_json s.Session.db) updates)) ])

let handle_session_decide t ~cancel req =
  let s = find_session t req in
  let decisions =
    match Option.bind (Proto.member "decisions" req.Proto.body) Proto.as_list with
    | None ->
      reply_error ?id:req.Proto.id Proto.Bad_request "missing \"decisions\" array"
    | Some ds ->
      List.map
        (fun d ->
          match Proto.decision_of_json d with
          | Ok d -> d
          | Error msg -> reply_error ?id:req.Proto.id Proto.Bad_request msg)
        ds
  in
  match Session.decide ~mapper:(Pool.solver_mapper t.pool) ~cancel s decisions with
  | Ok phase ->
    (match t.persist with
     | Some p -> (
       try
         (* Logged after the round applied: only state the client can
            observe reaches the WAL (see {!Persist}). *)
         Persist.log_decide p ~sid:s.Session.id decisions;
         Persist.log_phase p ~sid:s.Session.id ~phase:(phase_string phase)
       with Wal.Append_failed msg ->
         (* The round applied in memory but is not durable: tell the
            client to retry (decisions are idempotent — re-accepting or
            re-overriding the same cells re-converges to the same
            state) rather than silently risking its loss on restart. *)
         reply_error ?id:req.Proto.id Proto.Busy
           (Printf.sprintf "session log unavailable (%s); retry the round"
              msg))
     | None -> ());
    Proto.ok ?id:req.Proto.id (session_fields s)
  | Error msg -> reply_error ?id:req.Proto.id Proto.Bad_request msg

let handle_session_close t req =
  match Proto.string_field req.Proto.body "session" with
  | None -> reply_error ?id:req.Proto.id Proto.Bad_request "missing \"session\""
  | Some sid ->
    let existed = Session.Store.close t.store sid in
    Obs.Metrics.set g_sessions (float_of_int (Session.Store.count t.store));
    (match t.persist with
     | Some p when existed -> (
       try Persist.log_close p ~sid
       with Wal.Append_failed msg ->
         (* Closed in memory but not in the log: a restart would
            resurrect it (and TTL-evict it later).  Retryable. *)
         reply_error ?id:req.Proto.id Proto.Busy
           (Printf.sprintf "session log unavailable (%s); retry close" msg))
     | _ -> ());
    Proto.ok ?id:req.Proto.id [ ("closed", Json.Bool existed) ]

let uptime_s t = Obs.elapsed_ms ~since:t.started_at_ms /. 1000.0

let handle_stats t req =
  Obs.Metrics.set g_queue_depth (float_of_int (Pool.depth t.pool));
  Obs.Metrics.set g_sessions (float_of_int (Session.Store.count t.store));
  Obs.Metrics.set g_inflight (float_of_int (Atomic.get t.inflight));
  Obs.Metrics.set g_connections (float_of_int (Atomic.get t.active_conns));
  Obs.Metrics.set g_uptime (uptime_s t);
  Proto.ok ?id:req.Proto.id
    [ ("server",
       Json.Obj
         [ ("uptime_ms", Json.Float (Obs.elapsed_ms ~since:t.started_at_ms));
           ("uptime_s", Json.Float (uptime_s t));
           ("domains", Json.Int (Pool.size t.pool));
           ("queue_depth", Json.Int (Pool.depth t.pool));
           ("connections", Json.Int (Atomic.get t.active_conns));
           ("inflight", Json.Int (Atomic.get t.inflight));
           ("sessions", Json.Int (Session.Store.count t.store));
           ("load", Json.Float (Overload.Controller.load t.ctrl));
           ("brownout_level", Json.Int (Overload.Controller.level t.ctrl));
           ("breaker",
            Json.Str
              (Overload.Breaker.state_to_string
                 (Overload.Breaker.state t.breaker))) ]);
      (* Recovery state without grepping logs: the recovered-session
         counter, WAL layout and the latest append failure (if any). *)
      ("durable",
       Json.Obj
         ([ ("enabled", Json.Bool (t.persist <> None));
            ("sessions_recovered", Json.Int (Obs.Metrics.value c_recovered)) ]
          @ (match t.persist with
             | None -> []
             | Some p ->
               [ ("wal_shards", Json.Int (Persist.wal_shards p)) ]
               @ (match Persist.last_append_error p with
                  | Some msg -> [ ("wal_last_error", Json.Str msg) ]
                  | None -> []))));
      ("health", Health.to_json (Health.run_all ()));
      ("exemplars", Obs.Metrics.exemplars_json ());
      ("metrics", Obs.Metrics.snapshot ()) ]

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(* Heavy handlers run on the worker pool; the connection thread waits,
   polling cheaply, until completion or the request's deadline.

   Deadline handling is cooperative: the handler runs under a cancel
   token whose deadline mirrors [deadline_ms], so the solve aborts itself
   (degrading to an incumbent/greedy answer when it can) within
   milliseconds of the deadline.  The waiting thread additionally fires
   the token explicitly at the deadline — covering clock skew and jobs
   still queued — and only after [cancel_grace_ms] of unresponsiveness
   does it abandon the job (answering the client while the slot finishes
   in the background). *)
(* ---- admission control ------------------------------------------- *)

(* The per-client token bucket, created on first sight.  The table is
   bounded: client ids are <= 64 bytes on the wire and the table is
   reset past a generous cap (buckets refill to full burst, so a reset
   only briefly over-admits). *)
let client_bucket t client =
  Mutex.lock t.buckets_mu;
  if Hashtbl.length t.buckets > 4096 then Hashtbl.reset t.buckets;
  let b =
    match Hashtbl.find_opt t.buckets client with
    | Some b -> b
    | None ->
      let b =
        Overload.Token_bucket.create ~rate:t.cfg.client_rate
          ~burst:t.cfg.client_burst ()
      in
      Hashtbl.add t.buckets client b;
      b
  in
  Mutex.unlock t.buckets_mu;
  b

let observe_service_ms t ms =
  Mutex.lock t.svc_mu;
  t.svc_ewma_ms <-
    (if t.svc_ewma_ms = 0.0 then ms else (0.7 *. t.svc_ewma_ms) +. (0.3 *. ms));
  Mutex.unlock t.svc_mu

(* Expected time a job admitted now would sit queued: the backlog ahead
   of it, paced by the smoothed service time, spread over the workers. *)
let estimated_queue_wait_ms t =
  Mutex.lock t.svc_mu;
  let svc = t.svc_ewma_ms in
  Mutex.unlock t.svc_mu;
  float_of_int (Pool.depth t.pool) *. svc /. float_of_int (Pool.size t.pool)

(* Shed this request before queueing it?  [Some (reason, retry_after_ms)]
   says yes.  Checked in order of cost: breaker first (one mutex), then
   the load estimate, then the per-client bucket (only consulted once
   the server is browned out — at level 0 fairness comes from the
   round-robin queue alone and no client is ever rate-limited).

   Probe accounting: a [true] from [Breaker.allow] holds a half-open
   probe slot until exactly one of success/failure/release answers it.
   A shed decided {e after} the breaker admitted says nothing about
   downstream health, so those paths release the slot here; [None]
   hands the held slot to [run_on_pool], which reports the outcome. *)
let admission_verdict t req client =
  if not t.cfg.overload then None
  else if not (Overload.Breaker.allow t.breaker) then
    Some
      ( "circuit breaker open",
        Float.max 1.0 (Overload.Breaker.retry_after_ms t.breaker) )
  else begin
    let shed reason retry_after_ms =
      Overload.Breaker.release t.breaker;
      Some (reason, retry_after_ms)
    in
    let est = estimated_queue_wait_ms t in
    Overload.Controller.observe t.ctrl ~queue_wait_ms:est
      ~inflight:(Atomic.get t.inflight);
    Obs.Metrics.set g_brownout
      (float_of_int (Overload.Controller.level t.ctrl));
    match req.Proto.deadline_ms with
    | Some d when est > Float.max 0.0 d ->
      (* Queueing is pointless: the backlog alone outlives the deadline.
         Shedding now frees the slot for a request that can still win. *)
      shed
        (Printf.sprintf "estimated queue wait %.0fms exceeds deadline" est)
        (Overload.Controller.retry_after_ms t.ctrl)
    | _ ->
      if
        Overload.Controller.level t.ctrl >= 1
        && not (Overload.Token_bucket.try_take (client_bucket t client))
      then
        shed "client rate limit (brownout)"
          (Float.max 1.0
             (Overload.Token_bucket.wait_hint_ms (client_bucket t client)))
      else None
  end

let run_on_pool t meta ~client req handler =
  match admission_verdict t req client with
  | Some (reason, retry_after_ms) ->
    Obs.Metrics.incr m_shed;
    Obs.Metrics.set g_retry_after retry_after_ms;
    Proto.error ?id:req.Proto.id ~retry_after_ms Proto.Overloaded
      (Printf.sprintf "overloaded: %s; retry in %.0fms" reason retry_after_ms)
  | None ->
  (* Chaos flood: drag a burst of synthetic no-op jobs in with this
     admission, on the internal lane, for deterministic queue pressure. *)
  (match Faultsim.on_admission t.cfg.faults with
   | 0 -> ()
   | burst ->
     for _ = 1 to burst do
       ignore (Pool.try_submit t.pool (fun () -> Proto.ok []))
     done);
  let cancel =
    match req.Proto.deadline_ms with
    | Some d -> Cancel.create ~deadline_ms:(Float.max 0.0 d) ()
    | None -> Cancel.none
  in
  let deadline =
    Option.map (fun d -> Obs.now_ms () +. Float.max 0.0 d) req.Proto.deadline_ms
  in
  (* Capture the connection thread's trace context (the server.request
     span) and rebind it inside the worker domain, so the queue-wait and
     worker spans — and everything the solver opens below them — stitch
     into the request's tree instead of starting orphan traces. *)
  let ctx = Obs.Trace.current () in
  let submitted_us = Obs.now_us () in
  let job () =
    Obs.Trace.with_context ctx (fun () ->
        let wait_us = Float.max 0.0 (Obs.now_us () -. submitted_us) in
        let wait_ms = wait_us /. 1e3 in
        Atomic.set meta.queue_wait_ms (Some wait_ms);
        Obs.Metrics.observe h_queue_wait wait_ms;
        Overload.Controller.observe t.ctrl ~queue_wait_ms:wait_ms
          ~inflight:(Atomic.get t.inflight);
        Obs.Metrics.set g_brownout
          (float_of_int (Overload.Controller.level t.ctrl));
        Obs.emit_span "server.queue_wait"
          ~attrs:[ ("op", Obs.Str req.Proto.op) ]
          ~start_us:submitted_us ~dur_us:wait_us;
        let t_run = Obs.now_ms () in
        let resp =
          Obs.span "server.worker" ~attrs:[ ("op", Obs.Str req.Proto.op) ]
            (fun () -> handler t ~cancel req)
        in
        observe_service_ms t (Obs.elapsed_ms ~since:t_run);
        resp)
  in
  match Pool.try_submit ~cancel ~client t.pool job with
  | None ->
    (* Queue full is the bounded queue talking, not downstream health:
       give the admitted probe's slot back without a verdict. *)
    if t.cfg.overload then Overload.Breaker.release t.breaker;
    Obs.Metrics.incr m_busy;
    Proto.error ?id:req.Proto.id Proto.Busy
      (Printf.sprintf "worker queue full (%d jobs); retry later"
         t.cfg.queue_capacity)
  | Some fut ->
    Obs.Metrics.set g_queue_depth (float_of_int (Pool.depth t.pool));
    let deadline_error msg =
      Obs.Metrics.incr m_deadline;
      Proto.error ?id:req.Proto.id Proto.Deadline_exceeded msg
    in
    let rec wait ~grace =
      match Pool.poll fut with
      | `Done (Ok resp) -> resp
      | `Done (Error (Reply resp)) -> resp
      | `Done (Error Cancel.Cancelled) ->
        (* The token unwound a stage with no degradation path (e.g.
           acquisition); the worker slot is already free. *)
        deadline_error "deadline exceeded during solve"
      | `Done (Error (Wal.Append_failed msg)) ->
        (* Disk error on a durable append that no handler converted:
           still a retryable condition, never a crash. *)
        Proto.error ?id:req.Proto.id Proto.Busy
          (Printf.sprintf "busy: durable log unavailable (%s)" msg)
      | `Done (Error (Faultsim.Injected_fault what)) ->
        (* Simulated infrastructure failure: transient by construction,
           so tell the client it is safe to retry. *)
        Proto.error ?id:req.Proto.id Proto.Busy
          (Printf.sprintf "busy: worker lost to injected fault (%s)" what)
      | `Done (Error e) ->
        Proto.error ?id:req.Proto.id Proto.Internal (Printexc.to_string e)
      | `Cancelled ->
        deadline_error "deadline exceeded while queued"
      | `Pending_or_running ->
        (match deadline with
         | Some d when Obs.now_ms () > d ->
           (match grace with
            | None ->
              (* First poll past the deadline: deschedule if still
                 queued (next poll sees [`Cancelled]); otherwise fire
                 the running job's token and give it a short grace
                 period to unwind cooperatively. *)
              if Pool.request_cancel fut then wait ~grace
              else wait ~grace:(Some (d +. t.cfg.cancel_grace_ms))
            | Some g when Obs.now_ms () > g ->
              (* The job ignored its token past the grace window (a
                 stuck stage): answer the client now and let the slot
                 finish in the background rather than hang the
                 connection. *)
              deadline_error "deadline exceeded during solve (job abandoned)"
            | Some _ ->
              Thread.delay 0.0005;
              wait ~grace)
         | _ ->
           Thread.delay 0.0005;
           wait ~grace)
    in
    let resp = wait ~grace:None in
    (* Feed the breaker.  A deadline miss only counts as a failure when
       there was a backlog (an idle server missing a client's tight
       deadline is the client's choice, not overload); [internal]
       always does.  Every other outcome — [busy] (the bounded queue
       already answered it), client-shaped errors like [bad_request],
       a deadline miss on an empty queue — is neutral: release the
       probe slot so a half-open breaker can admit a replacement
       instead of leaking the slot and wedging. *)
    if t.cfg.overload then begin
      if Proto.response_ok resp then Overload.Breaker.success t.breaker
      else
        match fst (Proto.response_error resp) with
        | Some "deadline_exceeded" when Pool.depth t.pool > 0 ->
          Overload.Breaker.failure t.breaker
        | Some "internal" -> Overload.Breaker.failure t.breaker
        | _ -> Overload.Breaker.release t.breaker
    end;
    resp

(* ------------------------------------------------------------------ *)
(* Single-flight coalescing                                            *)
(* ------------------------------------------------------------------ *)

(* Identical in-flight [detect]/[repair] requests — same op, scenario,
   format and document — share one solve: the first claimant becomes the
   leader and computes; the rest await its answer and re-address it with
   their own request id.  Responses are a pure function of the request
   (wire-level byte-determinism), so a coalesced answer is byte-identical
   to a freshly computed one.  Followers whose leader fails (error
   response or exception) fall back to their own solve, so coalescing
   never makes an answer worse — only cheaper. *)
let coalesce_key req =
  match
    ( Proto.string_field req.Proto.body "scenario",
      Proto.string_field req.Proto.body "document" )
  with
  | Some scenario, Some document ->
    let format =
      Option.value ~default:"html" (Proto.string_field req.Proto.body "format")
    in
    Some
      (Digest.string
         (String.concat "\x00" [ req.Proto.op; scenario; format; document ]))
  | _ -> None (* malformed request: let the handler shape the error *)

let coalesced t req run =
  match (if t.cfg.coalesce then coalesce_key req else None) with
  | None -> run ()
  | Some key -> (
    let claim () =
      Mutex.lock t.flights_mu;
      let r =
        match Hashtbl.find_opt t.flights key with
        | Some cell -> `Follower cell
        | None ->
          let cell = { outcome = `Pending } in
          Hashtbl.add t.flights key cell;
          `Leader cell
      in
      Mutex.unlock t.flights_mu;
      r
    in
    match claim () with
    | `Leader cell ->
      let finish outcome =
        Mutex.lock t.flights_mu;
        Hashtbl.remove t.flights key;
        cell.outcome <- outcome;
        Mutex.unlock t.flights_mu
      in
      (match run () with
       | resp ->
         finish (if Proto.response_ok resp then `Done resp else `Failed);
         resp
       | exception e ->
         finish `Failed;
         raise e)
    | `Follower cell ->
      Obs.Metrics.incr m_coalesced;
      let deadline =
        Option.map
          (fun d -> Obs.now_ms () +. Float.max 0.0 d)
          req.Proto.deadline_ms
      in
      let peek () =
        Mutex.lock t.flights_mu;
        let o = cell.outcome in
        Mutex.unlock t.flights_mu;
        o
      in
      let rec await () =
        match peek () with
        | `Done resp -> Proto.reid ?id:req.Proto.id resp
        | `Failed ->
          (* The leader's failure may have been specific to it (its own
             deadline, an injected fault): compute our own answer. *)
          run ()
        | `Pending -> (
          match deadline with
          | Some d when Obs.now_ms () > d ->
            Obs.Metrics.incr m_deadline;
            Proto.error ?id:req.Proto.id Proto.Deadline_exceeded
              "deadline exceeded awaiting coalesced solve"
          | _ ->
            Thread.delay 0.0005;
            await ())
      in
      await ())

let dispatch t meta ~conn_client req =
  (* Fair-queue / rate-limit identity: the client's self-declared id
     when it sent one, else this connection's synthetic id (one slot per
     connection — an anonymous hot client still cannot starve others). *)
  let client = Option.value ~default:conn_client req.Proto.client in
  match req.Proto.op with
  | "ping" -> Proto.ok ?id:req.Proto.id [ ("pong", Json.Bool true) ]
  | "stats" -> handle_stats t req
  | "metrics" ->
    (* Prometheus text exposition over the wire protocol, for clients
       that already speak frames; [--telemetry-port] serves the same body
       over plain HTTP for curl/scrapers. *)
    Proto.ok ?id:req.Proto.id
      [ ("prometheus", Json.Str (Obs.Metrics.prometheus ())) ]
  | "shutdown" ->
    stop t;
    Proto.ok ?id:req.Proto.id [ ("stopping", Json.Bool true) ]
  | "session/next" -> handle_session_next t req
  | "session/close" -> handle_session_close t req
  | "acquire" -> run_on_pool t meta ~client req handle_acquire
  | "detect" ->
    coalesced t req (fun () -> run_on_pool t meta ~client req handle_detect)
  | "repair" ->
    coalesced t req (fun () ->
        run_on_pool t meta ~client req (fun t ~cancel req ->
            handle_repair t meta ~cancel req))
  | "session/open" -> run_on_pool t meta ~client req handle_session_open
  | "session/decide" -> run_on_pool t meta ~client req handle_session_decide
  | other ->
    Proto.error ?id:req.Proto.id Proto.Unknown_op
      (Printf.sprintf "unknown op %S" other)

(* Size-based rotation: once the current file exceeds
   [access_log_max_bytes], rename it to [FILE.1] (clobbering the previous
   generation) and start a fresh file — exactly one rotated generation is
   kept, bounding disk use at ~2x the threshold.  Called with [access_mu]
   held. *)
let rotate_access_log_locked t =
  match (t.access_oc, t.cfg.access_log) with
  | Some oc, Some path ->
    (try
       flush oc;
       close_out oc;
       Sys.rename path (path ^ ".1");
       t.access_oc <-
         Some (open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path);
       t.access_bytes <- 0
     with Sys_error _ ->
       (* Rotation failing (e.g. permissions on the directory) must not
          lose the log: reopen the original path and carry on appending. *)
       (try
          t.access_oc <-
            Some (open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path);
          t.access_bytes <-
            (match t.access_oc with
             | Some oc -> out_channel_length oc
             | None -> 0)
        with Sys_error _ -> t.access_oc <- None))
  | _ -> ()

(* Append one already-serialized JSON line to the access-log stream.
   The channel is shared by every connection thread (and the ops
   thread, for SLO events), so writes are serialized by [access_mu]. *)
let access_append t line =
  Mutex.lock t.access_mu;
  (match t.access_oc with
   | None -> ()
   | Some oc ->
     (try
        output_string oc line;
        output_char oc '\n';
        flush oc;
        t.access_bytes <- t.access_bytes + String.length line + 1;
        if t.cfg.access_log_max_bytes > 0
           && t.access_bytes >= t.cfg.access_log_max_bytes
        then rotate_access_log_locked t
      with Sys_error _ -> ()));
  Mutex.unlock t.access_mu

(* One JSON line per finished request. *)
let access_log_line t ~op ~trace_id ~outcome ~ms ~queue_wait ~provenance ~gap
    ~bytes_in ~bytes_out =
  match t.access_oc with
  | None -> ()
  | Some _ ->
    let line =
      Json.to_string
        (Json.Obj
           ([ ("ts_ms", Json.Float (Obs.now_ms ())); ("op", Json.Str op);
              ("trace_id", Json.Str trace_id); ("outcome", Json.Str outcome);
              ("ms", Json.Float ms); ("bytes_in", Json.Int bytes_in);
              ("bytes_out", Json.Int bytes_out) ]
            @ (match queue_wait with
               | Some w -> [ ("queue_wait_ms", Json.Float w) ]
               | None -> [])
            @ (match provenance with
               | Some p -> [ ("provenance", Json.Str p) ]
               | None -> [])
            @ (match gap with
               | Some g -> [ ("gap", Json.Float g) ]
               | None -> [])))
    in
    access_append t line

(* Burn-rate threshold crossings land in the same stream as request
   lines, so the on-call timeline interleaves "budget burning" with the
   requests that burned it. *)
let slo_event t (ev : Slo.event) =
  let kind = Slo.kind_label ev.Slo.ev_kind in
  Obs.log Obs.Warn "server.slo_burn"
    ~attrs:
      [ ("slo", Obs.Str ev.Slo.ev_slo); ("window", Obs.Str ev.Slo.ev_window);
        ("burn_rate", Obs.Float ev.Slo.ev_burn_rate); ("kind", Obs.Str kind) ];
  match t.access_oc with
  | None -> ()
  | Some _ ->
    access_append t
      (Json.to_string
         (Json.Obj
            [ ("ts_ms", Json.Float (Obs.now_ms ())); ("type", Json.Str "slo");
              ("slo", Json.Str ev.Slo.ev_slo);
              ("window", Json.Str ev.Slo.ev_window);
              ("burn_rate", Json.Float ev.Slo.ev_burn_rate);
              ("kind", Json.Str kind) ]))

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  nn = 0
  || (let found = ref false in
      for i = 0 to nh - nn do
        if (not !found) && String.sub hay i nn = needle then found := true
      done;
      !found)

(* Which bad endings deserve a post-mortem dump: deadline aborts, worker
   crashes (anything surfaced as [internal]) and injected faults (mapped
   to a retryable [busy], so matched by message). *)
let dump_reason ~outcome ~msg =
  match outcome with
  | "deadline_exceeded" -> Some "deadline"
  | "internal" -> Some "crash"
  | "busy"
    when (match msg with
          | Some m -> contains_substring m "injected fault"
          | None -> false) ->
    Some "fault"
  | _ -> None

(* The reason becomes part of a filename next to the (already hex-only)
   trace id, so hold it to the same standard: bounded length, filesystem
   and shell-safe charset, never empty.  Today's reasons are internal
   constants, but the bound keeps any future caller honest. *)
let sanitize_dump_reason reason =
  let n = min (String.length reason) 32 in
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    let c = reason.[i] in
    Bytes.set b i
      (match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> c
       | _ -> '_')
  done;
  if n = 0 then "unspecified" else Bytes.unsafe_to_string b

let maybe_dump_flight t ~trace_id ~outcome ~msg =
  match (t.flight, t.cfg.flight_dir) with
  | Some (_, snapshot), Some dir -> (
    match dump_reason ~outcome ~msg with
    | None -> ()
    | Some reason ->
      let reason = sanitize_dump_reason reason in
      let events =
        List.filter (fun e -> Obs.event_trace_id e = trace_id) (snapshot ())
      in
      (* [Proto.trace_of_json] already rejects non-hex trace ids, but a
         wire-supplied string must never name a filesystem path: anything
         that is not a plain hex token dumps as "untraced". *)
      let tid =
        if Proto.valid_trace_id trace_id then trace_id else "untraced"
      in
      let path =
        Filename.concat dir (Printf.sprintf "flight-%s-%s.jsonl" tid reason)
      in
      (try
         let oc = open_out path in
         output_string oc
           (Json.to_string
              (Json.Obj
                 [ ("type", Json.Str "flight"); ("trace_id", Json.Str trace_id);
                   ("reason", Json.Str reason);
                   ("events", Json.Int (List.length events)) ]));
         output_char oc '\n';
         List.iter
           (fun e ->
             output_string oc (Json.to_string (Obs.json_of_event e));
             output_char oc '\n')
           events;
         close_out oc;
         Obs.Metrics.incr m_flight_dumps;
         Obs.log Obs.Warn "server.flight_dump"
           ~attrs:
             [ ("path", Obs.Str path); ("reason", Obs.Str reason);
               ("events", Obs.Int (List.length events)) ]
       with Sys_error _ -> ()))
  | _ -> ()

(* Parse one frame payload and produce the serialized response.  Trace
   identity is decided here: a trace context carried in the request wins
   (the client started the trace); a bare request gets a fresh trace id
   at admission.  Serialization happens here too so the access log can
   record exact bytes-out. *)
let process t ~conn_client payload =
  let t0 = Obs.now_ms () in
  Obs.Metrics.add m_bytes_in (String.length payload);
  (* [g_inflight] is refreshed from [t.inflight] at read time
     (stats/telemetry) rather than here: two concurrent requests'
     gauge-set calls could land out of order and leave it stale. *)
  ignore (Atomic.fetch_and_add t.inflight 1);
  let meta = { queue_wait_ms = Atomic.make None; gap = Atomic.make None } in
  let resp, op, trace_id =
    match Json.of_string payload with
    | Error msg -> (Proto.error Proto.Parse_error msg, "<parse>", "")
    | Ok j ->
      (match Proto.request_of_json j with
       | Error msg ->
         (Proto.error ?id:(Proto.member "id" j) Proto.Parse_error msg, "<parse>", "")
       | Ok req ->
         let ctx =
           match req.Proto.trace with
           | Some (tid, psid) ->
             { Obs.Trace.trace_id = tid; parent_span_id = psid }
           | None ->
             { Obs.Trace.trace_id = Obs.Trace.fresh_trace_id ();
               parent_span_id = "" }
         in
         let resp =
           Obs.Trace.with_context (Some ctx) (fun () ->
               Obs.span "server.request" ~attrs:[ ("op", Obs.Str req.Proto.op) ]
                 (fun () ->
                   try dispatch t meta ~conn_client req with
                   | Reply resp -> resp
                   | e ->
                     Proto.error ?id:req.Proto.id Proto.Internal
                       (Printexc.to_string e)))
         in
         (resp, req.Proto.op, ctx.Obs.Trace.trace_id))
  in
  Obs.Metrics.incr m_requests;
  ignore (Atomic.fetch_and_add t.inflight (-1));
  let dt = Obs.elapsed_ms ~since:t0 in
  (* Record with an exemplar: the worst observation per bucket keeps its
     trace id, so a p99 on the scrape is traceable to a flight dump. *)
  let ex = if trace_id = "" then None else Some trace_id in
  Obs.Metrics.observe_ex ?trace_id:ex h_latency dt;
  Obs.Metrics.observe_ex ?trace_id:ex (verb_latency op) dt;
  let ok = Proto.response_ok resp in
  if not ok then Obs.Metrics.incr m_errors;
  let out = Json.to_string resp in
  Obs.Metrics.add m_bytes_out (String.length out);
  let code, msg = if ok then (None, None) else Proto.response_error resp in
  let outcome =
    match code with Some c -> c | None -> if ok then "ok" else "error"
  in
  if Obs.enabled () then
    Obs.log Obs.Debug "server.response"
      ~attrs:[ ("op", Obs.Str op); ("ms", Obs.Float dt) ];
  access_log_line t ~op ~trace_id ~outcome ~ms:dt
    ~queue_wait:(Atomic.get meta.queue_wait_ms)
    ~provenance:(Proto.string_field resp "provenance")
    ~gap:(Atomic.get meta.gap)
    ~bytes_in:(String.length payload) ~bytes_out:(String.length out);
  maybe_dump_flight t ~trace_id ~outcome ~msg;
  out

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

(* Wait for the next frame in short select slices, so the thread notices
   [stop] promptly (bounded drain) while honouring the idle timeout.  The
   actual frame read only starts once bytes are available, and is then
   bounded by [frame_read_timeout_s], NOT the (much longer) idle budget:
   a peer that starts a frame and trickles it (slowloris) pins this
   thread only until the per-frame deadline, after which the connection
   is closed — a length-prefixed stream cannot be resynchronized. *)
let read_request t fd =
  let idle_deadline = Obs.now_ms () +. (t.cfg.idle_timeout_s *. 1000.0) in
  let rec go () =
    if stopping t then `Stop
    else
      match Unix.select [ fd ] [] [] 0.5 with
      | [], _, _ -> if Obs.now_ms () > idle_deadline then `Idle else go ()
      | _ :: _, _, _ ->
        let budget_s =
          Float.min t.cfg.frame_read_timeout_s
            (Float.max 0.05 ((idle_deadline -. Obs.now_ms ()) /. 1000.0))
        in
        (match Frame.read ~timeout:budget_s ~max_len:t.cfg.max_frame_bytes fd with
         | Ok payload -> `Request payload
         | Error Frame.Timeout ->
           (* Bytes arrived but the frame never completed in budget:
              slow client, armor closes it. *)
           Obs.Metrics.incr m_slow_closes;
           `Idle
         | Error Frame.Eof -> `Eof
         | Error (Frame.Oversized n) -> `Oversized n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* An injected truncation leaves the stream unsynchronizable, exactly
   like a real short write before a crash: report failure so the
   connection closes.  The per-frame write deadline is the other half of
   the slow-client armor: a peer that stops draining its socket gets
   disconnected instead of pinning this thread in [write]. *)
let send t fd payload =
  try
    Frame.write ~faults:t.cfg.faults ~timeout:t.cfg.frame_write_timeout_s fd
      payload;
    true
  with
  | Frame.Write_timeout ->
    Obs.Metrics.incr m_slow_closes;
    false
  | Unix.Unix_error _ | Sys_error _ | Faultsim.Injected_fault _ -> false

let handle_connection t fd =
  Obs.Metrics.incr m_conn_total;
  Obs.Metrics.set g_connections (float_of_int (Atomic.get t.active_conns));
  let conn_client =
    Printf.sprintf "conn-%d" (Atomic.fetch_and_add t.conn_seq 1)
  in
  let rec serve () =
    match read_request t fd with
    | `Eof | `Idle -> ()
    | `Stop ->
      (* Refuse new work during drain, politely. *)
      ignore
        (send t fd
           (Json.to_string
              (Proto.error Proto.Shutting_down "server is shutting down")))
    | `Oversized n ->
      (* The stream cannot be resynchronized after an untrusted length:
         answer once, then close. *)
      ignore
        (send t fd
           (Json.to_string
              (Proto.error Proto.Oversized_frame
                 (Printf.sprintf "frame of %d bytes exceeds limit %d" n
                    t.cfg.max_frame_bytes))))
    | `Request payload ->
      let resp = process t ~conn_client payload in
      (* After answering the in-flight request, a draining server closes
         instead of reading further frames. *)
      if send t fd resp && not (stopping t) then serve ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      ignore (Atomic.fetch_and_add t.active_conns (-1));
      Obs.Metrics.set g_connections (float_of_int (Atomic.get t.active_conns)))
    serve

(* ------------------------------------------------------------------ *)
(* Listening and lifecycle                                             *)
(* ------------------------------------------------------------------ *)

let bind_listener cfg =
  match cfg.addr with
  | Proto.Unix_sock path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 128;
    fd
  | Proto.Tcp (host, port) ->
    let inet =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 128;
    fd

(** The bound address — useful with [Tcp (host, 0)] (ephemeral port). *)
let bound_addr t =
  match t.listen_fd with
  | None -> t.cfg.addr
  | Some fd ->
    (match Unix.getsockname fd with
     | Unix.ADDR_UNIX path -> Proto.Unix_sock path
     | Unix.ADDR_INET (inet, port) -> Proto.Tcp (Unix.string_of_inet_addr inet, port))

let accept_loop t fd =
  let last_sweep = ref (Obs.now_ms ()) in
  let rec loop () =
    if stopping t then ()
    else begin
      (* Liveness heartbeat: the select deadline is 1 s, so a healthy
         accept loop stamps this at least once a second even when idle.
         /healthz turns a stale stamp into a 503. *)
      Atomic.set t.heartbeat_ms (Obs.now_ms ());
      (match Unix.select [ fd; t.wake_r ] [] [] 1.0 with
       | readable, _, _ ->
         if List.memq t.wake_r readable then begin
           let buf = Bytes.create 16 in
           ignore (try Unix.read t.wake_r buf 0 16 with Unix.Unix_error _ -> 0)
         end;
         if List.memq fd readable && not (stopping t) then begin
           match Unix.accept ~cloexec:true fd with
           | conn_fd, _ ->
             (match t.cfg.addr with
              | Proto.Tcp _ ->
                (try Unix.setsockopt conn_fd Unix.TCP_NODELAY true
                 with Unix.Unix_error _ -> ())
              | Proto.Unix_sock _ -> ());
             ignore (Atomic.fetch_and_add t.active_conns 1);
             ignore (Thread.create (fun () -> handle_connection t conn_fd) ())
           | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
         end
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      if Obs.elapsed_ms ~since:!last_sweep > 1000.0 then begin
        last_sweep := Obs.now_ms ();
        let evicted = Session.Store.sweep t.store in
        (* TTL eviction is a close for durability purposes: without it a
           restart would resurrect sessions the live server dropped. *)
        (match t.persist with
         | Some p ->
           List.iter
             (fun (sid, _) ->
               try Persist.log_close p ~sid
               with Wal.Append_failed msg ->
                 (* Never kill the accept loop over disk pressure; the
                    un-logged eviction is re-evicted after a restart. *)
                 Obs.log Obs.Warn "server.wal_append_failed"
                   ~attrs:[ ("sid", Obs.Str sid); ("error", Obs.Str msg) ])
             evicted
         | None -> ());
        if evicted <> [] && Obs.enabled () then
          Obs.log Obs.Info "server.sessions_evicted"
            ~attrs:
              [ ("count", Obs.Int (List.length evicted));
                (* "<session>:<origin trace>" pairs so an evicted
                   session can be tied back to its opener's trace. *)
                ("sessions",
                 Obs.Str
                   (String.concat ","
                      (List.map
                         (fun (sid, tr) ->
                           if tr = "" then sid else sid ^ ":" ^ tr)
                         evicted))) ];
        Obs.Metrics.set g_sessions (float_of_int (Session.Store.count t.store));
        Obs.Metrics.set g_queue_depth (float_of_int (Pool.depth t.pool))
      end;
      loop ()
    end
  in
  loop ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (match t.cfg.addr with
   | Proto.Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
   | Proto.Tcp _ -> ())

(* ------------------------------------------------------------------ *)
(* Health model                                                        *)
(* ------------------------------------------------------------------ *)

(* One named check per subsystem, registered in {!start} and dropped in
   {!wait}.  Checks read live state only — no I/O, no locks beyond the
   subsystems' own — so /readyz stays cheap enough to poll every second.
   Severity policy: [Failing] means "stop sending traffic here" (readyz
   503); [Degraded] means "watch it" (still ready — shedding load is the
   overload controller's job, not the load balancer's). *)
let health_check_names =
  [ "pool"; "breaker"; "brownout"; "sessions"; "wal"; "solve_cache";
    "telemetry" ]

let register_health t =
  Health.register "pool" (fun () ->
      let depth = Pool.depth t.pool in
      if depth >= t.cfg.queue_capacity then
        Health.Degraded (Printf.sprintf "queue full (depth %d)" depth)
      else Health.Ok);
  Health.register "breaker" (fun () ->
      match Overload.Breaker.state t.breaker with
      | Overload.Breaker.Closed -> Health.Ok
      | Overload.Breaker.Half_open -> Health.Degraded "probing after trip"
      | Overload.Breaker.Open ->
        Health.Failing
          (Printf.sprintf "open; retry in %.0f ms"
             (Overload.Breaker.retry_after_ms t.breaker)));
  Health.register "brownout" (fun () ->
      let level = Overload.Controller.level t.ctrl in
      if level > 0 then
        Health.Degraded (Printf.sprintf "brownout level %d" level)
      else Health.Ok);
  Health.register "sessions" (fun () ->
      let n = Session.Store.count t.store in
      if n >= t.cfg.max_sessions then
        Health.Degraded (Printf.sprintf "at capacity (%d)" n)
      else Health.Ok);
  Health.register "wal" (fun () ->
      match t.persist with
      | None -> Health.Ok (* volatile mode: nothing to fail *)
      | Some p ->
        (match Persist.last_append_error p with
         | Some msg -> Health.Failing ("append failing: " ^ msg)
         | None -> Health.Ok));
  Health.register "solve_cache" (fun () -> Health.Ok);
  Health.register "telemetry" (fun () ->
      if t.cfg.telemetry_port <> None && t.telemetry_fd = None then
        Health.Degraded "listener not running"
      else Health.Ok)

let unregister_health () = List.iter Health.unregister health_check_names

(* ------------------------------------------------------------------ *)
(* Telemetry endpoint                                                  *)
(* ------------------------------------------------------------------ *)

(* A deliberately tiny HTTP/1.0 server with three routes:

   - [/metrics]  — Prometheus exposition of the registry,
   - [/healthz]  — liveness: is the accept loop actually looping,
   - [/readyz]   — readiness: should a balancer send traffic here.

   One short-lived connection per request, handled inline on the
   telemetry thread — every response is a registry/health walk,
   microseconds.  Anything else is a 404; non-GET/HEAD is a 405; HEAD
   gets the headers (with the length the GET would have had) and no
   body. *)

let http_response ~code ~reason ~content_type ~head body =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    code reason content_type (String.length body)
    (if head then "" else body)

(* How stale the accept-loop heartbeat may get before /healthz reports
   the process wedged.  The loop stamps at least once a second, so 5 s
   of silence means it is stuck, not slow. *)
let healthz_stale_ms = 5000.0

let healthz_body t =
  let age_ms = Obs.elapsed_ms ~since:(Atomic.get t.heartbeat_ms) in
  let alive = (not (stopping t)) && age_ms <= healthz_stale_ms in
  ( alive,
    Json.to_string
      (Json.Obj
         [ ("status", Json.Str (if alive then "ok" else "failing"));
           ("heartbeat_age_ms", Json.Float age_ms);
           ("uptime_s", Json.Float (uptime_s t)) ]) )

let readyz_body t =
  let report = Health.run_all () in
  let ready = (not (stopping t)) && Health.culprits report = [] in
  (ready, Json.to_string (Health.to_json report))

let telemetry_respond t ~meth ~path =
  let head = meth = "HEAD" in
  let json = "application/json; charset=utf-8" in
  match meth with
  | "GET" | "HEAD" ->
    (match path with
     | "/metrics" ->
       Obs.Metrics.set g_queue_depth (float_of_int (Pool.depth t.pool));
       Obs.Metrics.set g_sessions (float_of_int (Session.Store.count t.store));
       Obs.Metrics.set g_connections (float_of_int (Atomic.get t.active_conns));
       Obs.Metrics.set g_inflight (float_of_int (Atomic.get t.inflight));
       Obs.Metrics.set g_uptime (uptime_s t);
       http_response ~code:200 ~reason:"OK"
         ~content_type:"text/plain; version=0.0.4; charset=utf-8" ~head
         (Obs.Metrics.prometheus ())
     | "/healthz" ->
       let alive, body = healthz_body t in
       if alive then
         http_response ~code:200 ~reason:"OK" ~content_type:json ~head body
       else
         http_response ~code:503 ~reason:"Service Unavailable"
           ~content_type:json ~head body
     | "/readyz" ->
       let ready, body = readyz_body t in
       if ready then
         http_response ~code:200 ~reason:"OK" ~content_type:json ~head body
       else
         http_response ~code:503 ~reason:"Service Unavailable"
           ~content_type:json ~head body
     | _ ->
       http_response ~code:404 ~reason:"Not Found"
         ~content_type:"text/plain; charset=utf-8" ~head "not found\n")
  | _ ->
    http_response ~code:405 ~reason:"Method Not Allowed"
      ~content_type:"text/plain; charset=utf-8" ~head:false
      "method not allowed\n"

(* "METHOD SP PATH ..." — querystrings are stripped, the HTTP version
   (or its absence: HTTP/0.9) is ignored.  [None] = unparseable. *)
let parse_request_line line =
  match String.index_opt line ' ' with
  | None -> None
  | Some sp ->
    let meth = String.sub line 0 sp in
    let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
    let target =
      match String.index_opt rest ' ' with
      | Some sp2 -> String.sub rest 0 sp2
      | None -> rest
    in
    let path =
      match String.index_opt target '?' with
      | Some q -> String.sub target 0 q
      | None -> target
    in
    if meth = "" || path = "" then None else Some (meth, path)

(* Scrapes are handled inline on the telemetry thread, so one stalled
   scraper must never block the next: the request-read is bounded by a
   select deadline (a half-open socket that sends nothing is dropped
   after a second) and the response write is bounded too (a peer that
   connects but never drains its receive buffer would otherwise pin the
   thread in a blocking [write] once the exposition outgrows the socket
   buffer).  The exposition does outgrow it once per-verb histograms
   fill in — hence the deadline-looped full write, not one [write]. *)
let telemetry_read_timeout_s = 1.0
let telemetry_write_timeout_s = 5.0

let telemetry_serve t conn =
  (try
     let readable =
       match Unix.select [ conn ] [] [] telemetry_read_timeout_s with
       | r, _, _ -> r <> []
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
     in
     if readable then begin
       let buf = Bytes.create 1024 in
       let n = try Unix.read conn buf 0 1024 with Unix.Unix_error _ -> 0 in
       let req = Bytes.sub_string buf 0 (max n 0) in
       let line =
         match String.index_opt req '\r' with
         | Some i -> String.sub req 0 i
         | None ->
           (match String.index_opt req '\n' with
            | Some i -> String.sub req 0 i
            | None -> req)
       in
       let resp =
         match parse_request_line line with
         | Some (meth, path) -> telemetry_respond t ~meth ~path
         | None ->
           http_response ~code:400 ~reason:"Bad Request"
             ~content_type:"text/plain; charset=utf-8" ~head:false
             "bad request\n"
       in
       Frame.write_all ~timeout:telemetry_write_timeout_s conn
         (Bytes.unsafe_of_string resp) 0 (String.length resp)
     end
   with Unix.Unix_error _ | Frame.Write_timeout -> ());
  try Unix.close conn with Unix.Unix_error _ -> ()

let telemetry_loop t fd =
  let rec loop () =
    if stopping t then ()
    else begin
      (match Unix.select [ fd ] [] [] 0.5 with
       | [], _, _ -> ()
       | _ :: _, _, _ -> (
         match Unix.accept ~cloexec:true fd with
         | conn, _ -> telemetry_serve t conn
         | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (try Unix.close fd with Unix.Unix_error _ -> ())

(** Where the telemetry endpoint is listening ([Some (host, port)] once
    started with [telemetry_port]; resolves an ephemeral port 0). *)
let telemetry_addr t =
  match t.telemetry_fd with
  | None -> None
  | Some fd ->
    (match Unix.getsockname fd with
     | Unix.ADDR_INET (inet, port) -> Some (Unix.string_of_inet_addr inet, port)
     | Unix.ADDR_UNIX _ -> None)

let start_telemetry t port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 16;
  t.telemetry_fd <- Some fd;
  t.telemetry_thread <- Some (Thread.create (fun () -> telemetry_loop t fd) ())

(* ------------------------------------------------------------------ *)
(* Ops loop: runtime sampling + SLO evaluation at ~1 Hz                 *)
(* ------------------------------------------------------------------ *)

let make_slo t =
  Slo.create ~on_event:(fun ev -> slo_event t ev)
    [ Slo.availability ~name:"availability" ~target:t.cfg.slo_availability_target
        ~good:(fun () ->
          float_of_int
            (Obs.Metrics.value m_requests - Obs.Metrics.value m_errors))
        ~total:(fun () -> float_of_int (Obs.Metrics.value m_requests));
      Slo.latency ~name:"repair_latency" ~target:t.cfg.slo_latency_target
        ~threshold_ms:t.cfg.slo_latency_ms (verb_latency "repair") ]

(* One thread owns the periodic work: GC/runtime sampling, SLO ticks and
   gauge refresh.  It sleeps in 0.1 s slices so [stop] is honoured
   within ~100 ms, but samples on 1 s boundaries.  Every 60th sample is
   a [live] one (the Gc.stat heap walk). *)
let ops_loop t =
  let tick = ref 0 in
  let next = ref (Obs.now_ms () +. 1000.0) in
  while not (stopping t) do
    Thread.delay 0.1;
    if (not (stopping t)) && Obs.now_ms () >= !next then begin
      next := !next +. 1000.0;
      incr tick;
      Runtime.sample ~interval_ms:1000.0 ~live:(!tick mod 60 = 0) ();
      (match t.slo with Some s -> Slo.tick s | None -> ());
      Obs.Metrics.set g_uptime (uptime_s t);
      Obs.Metrics.set g_queue_depth (float_of_int (Pool.depth t.pool));
      Obs.Metrics.set g_sessions (float_of_int (Session.Store.count t.store));
      Obs.Metrics.set g_inflight (float_of_int (Atomic.get t.inflight));
      Obs.Metrics.set g_connections (float_of_int (Atomic.get t.active_conns))
    end
  done

(** Bind and start accepting (non-blocking; see {!wait}). *)
let start t =
  if t.accept_thread <> None then invalid_arg "Server.start: already started";
  let fd = bind_listener t.cfg in
  t.listen_fd <- Some fd;
  (match t.cfg.telemetry_port with
   | Some port -> start_telemetry t port
   | None -> ());
  if t.cfg.health_slo then begin
    register_health t;
    Runtime.install_alarm ();
    Runtime.set_build_info ();
    t.slo <- Some (make_slo t);
    t.ops_thread <- Some (Thread.create (fun () -> ops_loop t) ())
  end;
  if Obs.enabled () then
    Obs.log Obs.Info "server.listening"
      ~attrs:
        ([ ("addr", Obs.Str (Proto.addr_to_string (bound_addr t)));
           ("domains", Obs.Int t.cfg.domains);
           ("queue", Obs.Int t.cfg.queue_capacity) ]
         @ (match telemetry_addr t with
            | Some (host, port) ->
              [ ("telemetry", Obs.Str (Printf.sprintf "http://%s:%d/metrics" host port)) ]
            | None -> []));
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t fd) ())

(** Wait for shutdown: joins the accept loop, drains connections (up to
    [drain_timeout_s]), then joins the worker pool and releases the
    telemetry listener, access log and flight recorder. *)
let wait t =
  (match t.accept_thread with
   | None -> invalid_arg "Server.wait: not started"
   | Some th -> Thread.join th);
  let drain_deadline = Obs.now_ms () +. (t.cfg.drain_timeout_s *. 1000.0) in
  while Atomic.get t.active_conns > 0 && Obs.now_ms () < drain_deadline do
    Thread.delay 0.01
  done;
  Pool.shutdown t.pool;
  (match t.ops_thread with
   | Some th -> Thread.join th; t.ops_thread <- None
   | None -> ());
  if t.cfg.health_slo then unregister_health ();
  (match t.telemetry_thread with
   | Some th -> Thread.join th; t.telemetry_thread <- None; t.telemetry_fd <- None
   | None -> ());
  (match t.access_oc with
   | Some oc ->
     t.access_oc <- None;
     (try flush oc; close_out oc with Sys_error _ -> ())
   | None -> ());
  (match t.persist with Some p -> Persist.close p | None -> ());
  (match t.flight with Some (sink, _) -> Obs.uninstall sink | None -> ());
  if Obs.enabled () then
    Obs.log Obs.Info "server.stopped"
      ~attrs:[ ("undrained_connections", Obs.Int (Atomic.get t.active_conns)) ]

(** [run t] = {!start} + {!wait}: serve until a signal / [shutdown]. *)
let run t =
  start t;
  wait t
