(** Length-prefixed framing for the wire protocol.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of UTF-8 JSON.  The length prefix makes the stream
    self-delimiting without any in-band escaping, so payloads can contain
    arbitrary bytes (documents, CSV) untouched.

    Reads are defensive: a length above [max_len] is reported as
    [Oversized] {e without} reading the payload (the stream cannot be
    resynchronized after an untrusted length, so the caller must close
    the connection), a peer that stops mid-frame yields [Eof] or
    [Timeout], and all syscalls retry on [EINTR]. *)

type read_error =
  | Eof                 (** peer closed (possibly mid-frame) *)
  | Timeout             (** no complete frame before the deadline *)
  | Oversized of int    (** declared length exceeds [max_len] *)

let read_error_to_string = function
  | Eof -> "connection closed"
  | Timeout -> "read timeout"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes declared)" n

exception Write_timeout
(** Raised by {!write} when [timeout] elapses with the frame still
    partly unsent — a peer that stopped draining its socket.  The
    stream cannot be resynchronized; the caller must close. *)

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let rec write_all fd buf off len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (off + n) (len - n)
  end

(* Wait until [fd] accepts writes or the absolute [deadline] passes. *)
let wait_writable fd deadline =
  let rec go () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then false
    else
      match Unix.select [] [ fd ] [] remaining with
      | _, [], _ -> go ()
      | _, _ :: _, _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* Deadline-bounded write: the fd is flipped to non-blocking for the
   duration so a peer with a full receive window cannot pin this thread
   in a blocking [Unix.write] — the slow-client armor.  @raise
   Write_timeout when [deadline] passes with bytes still unsent. *)
let write_all_deadline fd buf off len deadline =
  Unix.set_nonblock fd;
  Fun.protect
    ~finally:(fun () -> try Unix.clear_nonblock fd with Unix.Unix_error _ -> ())
    (fun () ->
      let rec go off len =
        if len > 0 then begin
          if not (wait_writable fd deadline) then raise Write_timeout;
          match Unix.write fd buf off len with
          | n -> go (off + n) (len - n)
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            -> go off len
        end
      in
      go off len)

let write_all ?timeout fd buf off len =
  match timeout with
  | None -> write_all fd buf off len
  | Some t -> write_all_deadline fd buf off len (Unix.gettimeofday () +. t)

let frame_bytes payload =
  let n = String.length payload in
  let buf = Bytes.create (4 + n) in
  Bytes.set_int32_be buf 0 (Int32.of_int n);
  Bytes.blit_string payload 0 buf 4 n;
  buf

(** Send one frame.  [timeout] (seconds) bounds the write of the whole
    frame; when it elapses with the peer still not draining its socket,
    {!Write_timeout} is raised and the caller must close (slow-client
    armor).  [faults] may delay the write, corrupt payload bytes,
    trickle the frame (slowloris), or truncate it mid-stream — in the
    truncation case the partial bytes are sent and
    {!Dart_faultsim.Faultsim.Injected_fault} is raised so the caller
    closes the connection (the stream cannot be resynchronized after a
    short frame).
    @raise Unix.Unix_error on a broken connection. *)
let write ?(faults = Dart_faultsim.Faultsim.none) ?timeout fd payload =
  match Dart_faultsim.Faultsim.on_frame_write faults payload with
  | Dart_faultsim.Faultsim.Pass ->
    let buf = frame_bytes payload in
    write_all ?timeout fd buf 0 (Bytes.length buf)
  | Dart_faultsim.Faultsim.Corrupt payload' ->
    let buf = frame_bytes payload' in
    write_all ?timeout fd buf 0 (Bytes.length buf)
  | Dart_faultsim.Faultsim.Truncate cut ->
    let buf = frame_bytes payload in
    write_all ?timeout fd buf 0 (min cut (Bytes.length buf));
    raise (Dart_faultsim.Faultsim.Injected_fault "frame_truncate")
  | Dart_faultsim.Faultsim.Trickle (cut, pause_s) ->
    (* Slowloris chaos: a prefix, a stall, then the rest.  The write
       deadline deliberately does NOT cover the injected stall — the
       fault models this process being slow, not the peer. *)
    let buf = frame_bytes payload in
    let cut = min cut (Bytes.length buf) in
    write_all ?timeout fd buf 0 cut;
    Unix.sleepf pause_s;
    write_all ?timeout fd buf cut (Bytes.length buf - cut)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

(* Wait until [fd] is readable or [deadline] (absolute, seconds as given
   by [Unix.gettimeofday]) passes.  [None] = wait forever. *)
let wait_readable fd deadline =
  match deadline with
  | None -> true
  | Some d ->
    let rec go () =
      let remaining = d -. Unix.gettimeofday () in
      if remaining <= 0.0 then false
      else
        match Unix.select [ fd ] [] [] remaining with
        | [], _, _ -> go ()
        | _ :: _, _, _ -> true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()

(* Read exactly [len] bytes into [buf] at [off]; partial data followed by
   EOF or the deadline is an error. *)
let read_exact fd buf off len deadline =
  let rec go off len =
    if len = 0 then Ok ()
    else if not (wait_readable fd deadline) then Error Timeout
    else
      match Unix.read fd buf off len with
      | 0 -> Error Eof
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
  in
  go off len

(** Read one frame.  [timeout] (seconds) bounds the wait for the {e whole}
    frame, measured from the call. *)
let read ?timeout ?(max_len = 16 * 1024 * 1024) fd : (string, read_error) result =
  let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout in
  let hdr = Bytes.create 4 in
  match read_exact fd hdr 0 4 deadline with
  | Error e -> Error e
  | Ok () ->
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > max_len then Error (Oversized len)
    else begin
      let buf = Bytes.create len in
      match read_exact fd buf 0 len deadline with
      | Error e -> Error e
      | Ok () -> Ok (Bytes.unsafe_to_string buf)
    end
