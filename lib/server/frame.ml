(** Length-prefixed framing for the wire protocol.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of UTF-8 JSON.  The length prefix makes the stream
    self-delimiting without any in-band escaping, so payloads can contain
    arbitrary bytes (documents, CSV) untouched.

    Reads are defensive: a length above [max_len] is reported as
    [Oversized] {e without} reading the payload (the stream cannot be
    resynchronized after an untrusted length, so the caller must close
    the connection), a peer that stops mid-frame yields [Eof] or
    [Timeout], and all syscalls retry on [EINTR]. *)

type read_error =
  | Eof                 (** peer closed (possibly mid-frame) *)
  | Timeout             (** no complete frame before the deadline *)
  | Oversized of int    (** declared length exceeds [max_len] *)

let read_error_to_string = function
  | Eof -> "connection closed"
  | Timeout -> "read timeout"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes declared)" n

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let rec write_all fd buf off len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (off + n) (len - n)
  end

let frame_bytes payload =
  let n = String.length payload in
  let buf = Bytes.create (4 + n) in
  Bytes.set_int32_be buf 0 (Int32.of_int n);
  Bytes.blit_string payload 0 buf 4 n;
  buf

(** Send one frame.  [faults] may delay the write, corrupt payload bytes,
    or truncate the frame mid-stream — in the truncation case the partial
    bytes are sent and {!Dart_faultsim.Faultsim.Injected_fault} is raised
    so the caller closes the connection (the stream cannot be
    resynchronized after a short frame).
    @raise Unix.Unix_error on a broken connection. *)
let write ?(faults = Dart_faultsim.Faultsim.none) fd payload =
  match Dart_faultsim.Faultsim.on_frame_write faults payload with
  | Dart_faultsim.Faultsim.Pass ->
    let buf = frame_bytes payload in
    write_all fd buf 0 (Bytes.length buf)
  | Dart_faultsim.Faultsim.Corrupt payload' ->
    let buf = frame_bytes payload' in
    write_all fd buf 0 (Bytes.length buf)
  | Dart_faultsim.Faultsim.Truncate cut ->
    let buf = frame_bytes payload in
    write_all fd buf 0 (min cut (Bytes.length buf));
    raise (Dart_faultsim.Faultsim.Injected_fault "frame_truncate")

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

(* Wait until [fd] is readable or [deadline] (absolute, seconds as given
   by [Unix.gettimeofday]) passes.  [None] = wait forever. *)
let wait_readable fd deadline =
  match deadline with
  | None -> true
  | Some d ->
    let rec go () =
      let remaining = d -. Unix.gettimeofday () in
      if remaining <= 0.0 then false
      else
        match Unix.select [ fd ] [] [] remaining with
        | [], _, _ -> go ()
        | _ :: _, _, _ -> true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()

(* Read exactly [len] bytes into [buf] at [off]; partial data followed by
   EOF or the deadline is an error. *)
let read_exact fd buf off len deadline =
  let rec go off len =
    if len = 0 then Ok ()
    else if not (wait_readable fd deadline) then Error Timeout
    else
      match Unix.read fd buf off len with
      | 0 -> Error Eof
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
  in
  go off len

(** Read one frame.  [timeout] (seconds) bounds the wait for the {e whole}
    frame, measured from the call. *)
let read ?timeout ?(max_len = 16 * 1024 * 1024) fd : (string, read_error) result =
  let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout in
  let hdr = Bytes.create 4 in
  match read_exact fd hdr 0 4 deadline with
  | Error e -> Error e
  | Ok () ->
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > max_len then Error (Oversized len)
    else begin
      let buf = Bytes.create len in
      match read_exact fd buf 0 len deadline with
      | Error e -> Error e
      | Ok () -> Ok (Bytes.unsafe_to_string buf)
    end
