(** Stateful validation sessions: the paper's §6.3 operator loop, spread
    across requests.

    A session pins one acquired database instance D plus the operator's
    accumulated equality pins.  [session/next] shows the current
    card-minimal proposal's suggested updates (display-ordered,
    most-constraint-involved first, minus already-validated cells);
    [session/decide] turns Accept/Override decisions into pins and
    re-solves under them — exactly the state transitions of
    {!Dart_repair.Validation.run}, so a client that decides every pending
    update each round reproduces the in-process loop outcome (same final
    database, same iteration/examined/pin counts).

    Sessions are mutexed (concurrent requests on one session serialize)
    and TTL-evicted by {!Store}, so an operator who walks away does not
    leak pins and database instances. *)

open Dart_numeric
open Dart_relational
open Dart_constraints
open Dart_repair
open Dart
module Obs = Dart_obs.Obs

type phase =
  | Proposing of Repair.t      (** current full proposal ρ *)
  | Converged of Database.t    (** accepted repair applied *)
  | Failed of string           (** no_repair / node_budget_exceeded / max_iterations *)

type t = {
  id : string;
  origin_trace : string;                 (** trace id of the request that
                                             opened the session; links the
                                             session's lifetime back to the
                                             opener's span tree ("" when the
                                             opener was untraced) *)
  scenario : Scenario.t;
  db : Database.t;                       (** the acquired instance D *)
  rows : Ground.row list;                (** ground system, computed once *)
  warm : Solver.Warm.t;                  (** incremental solver state: pins
                                             only grow across [decide]s, so
                                             every re-solve appends rows and
                                             warm-starts from the last bases *)
  max_nodes : int;
  max_iterations : int;
  mutable pins : (Ground.cell * Rat.t) list;
  mutable validated : Ground.cell list;
  mutable iterations : int;
  mutable examined : int;
  mutable phase : phase;
  mutable expires_at_ms : float;
  smu : Mutex.t;
}

let locked s f =
  Mutex.lock s.smu;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.smu) f

(** Pending suggestions of a proposal: display-ordered, minus cells the
    operator already validated (§6.3: never shown twice). *)
let pending_of s rho =
  List.filter
    (fun u -> not (List.mem (Update.cell u) s.validated))
    (Solver.display_order s.rows rho)

let pending s =
  locked s (fun () ->
      match s.phase with Proposing rho -> pending_of s rho | _ -> [])

(* Apply the accumulated pins as the accepted repair (the [Consistent]
   branch of Validation.run). *)
let apply_pins s =
  let updates =
    List.filter_map
      (fun (cell, v) ->
        let tid, attr = cell in
        let current = Ground.db_valuation s.db cell in
        if Rat.equal current v then None
        else begin
          let tu = Database.find s.db tid in
          let rs = Schema.relation (Database.schema s.db) (Tuple.relation tu) in
          Some
            (Update.make ~tid ~attr
               ~new_value:(Value.of_rat (Schema.attr_domain rs attr) v))
        end)
      s.pins
  in
  Update.apply s.db updates

(* One re-solve under the accumulated pins; mirrors one turn of the
   Validation.run loop.  Caller holds the session mutex. *)
let resolve ~mapper ?cancel s =
  if s.iterations >= s.max_iterations then s.phase <- Failed "max_iterations"
  else begin
    let result =
      Obs.span "server.session.resolve"
        ~attrs:[ ("session", Obs.Str s.id); ("pins", Obs.Int (List.length s.pins)) ]
        (fun () -> Solver.Warm.solve ~mapper ?cancel s.warm ~forced:s.pins)
    in
    match result with
    | Solver.Consistent -> s.phase <- Converged (apply_pins s)
    | Solver.Repaired (rho, _prov, _) ->
      (* Degraded (incumbent) proposals are fine here: every suggestion
         still goes through the operator before anything is applied. *)
      s.iterations <- s.iterations + 1;
      if pending_of s rho = [] then
        (* Every suggestion was validated before: the repair stands. *)
        s.phase <- Converged (Update.apply s.db rho)
      else s.phase <- Proposing rho
    | Solver.No_repair _ -> s.phase <- Failed "no_repair"
    | Solver.Node_budget_exceeded _ -> s.phase <- Failed "node_budget_exceeded"
    | Solver.Cancelled _ ->
      (* Deadline hit mid-re-solve.  Keep the previous proposal (anytime
         semantics: the operator can keep validating it or retry the
         decision), but a session whose *first* solve was cancelled has
         nothing to show and is marked failed. *)
      if s.iterations = 0 then s.phase <- Failed "cancelled"
  end

(** Open a session on an acquired instance and compute the first
    proposal. *)
let create ~id ?(origin_trace = "") ~scenario ~db ?(max_nodes = 2_000_000)
    ?(max_iterations = 50) ~mapper ?cancel ~now_ms ~ttl_ms () =
  let rows = Ground.of_constraints db scenario.Scenario.constraints in
  let s =
    { id; origin_trace; scenario; db; rows;
      warm = Solver.Warm.create ~max_nodes ~rows db scenario.Scenario.constraints;
      max_nodes; max_iterations; pins = []; validated = []; iterations = 0;
      examined = 0; phase = Proposing []; expires_at_ms = now_ms +. ttl_ms;
      smu = Mutex.create () }
  in
  resolve ~mapper ?cancel s;
  s

type decide_outcome = (phase, string) result

(** Apply one round of operator decisions.  Every decision must address a
    currently pending cell, each at most once; decisions covering {e all}
    pending updates with no override accept the proposal outright
    (Validation.run's [batch = None] fast path), anything else pins the
    decided cells and re-solves. *)
let decide ~mapper ?cancel s (decisions : Proto.decision_wire list) : decide_outcome =
  locked s @@ fun () ->
  match s.phase with
  | Converged _ -> Error "session already converged"
  | Failed why -> Error ("session failed: " ^ why)
  | Proposing rho ->
    let pending = pending_of s rho in
    let find_pending tid attr =
      List.find_opt
        (fun u -> u.Update.tid = tid && u.Update.attr = attr)
        pending
    in
    if decisions = [] then Error "no decisions given"
    else begin
      let cells = List.map (fun d -> (d.Proto.d_tid, d.Proto.d_attr)) decisions in
      if List.length (List.sort_uniq compare cells) <> List.length cells then
        Error "duplicate decisions for one cell"
      else begin
        (* Resolve each decision to a pin, rejecting unknown cells. *)
        let rec to_pins acc over = function
          | [] -> Ok (List.rev acc, over)
          | d :: rest ->
            (match find_pending d.Proto.d_tid d.Proto.d_attr with
             | None ->
               Error
                 (Printf.sprintf "cell <t%d,%s> is not awaiting validation"
                    d.Proto.d_tid d.Proto.d_attr)
             | Some u ->
               let cell = Update.cell u in
               (match d.Proto.d_kind with
                | `Accept ->
                  to_pins ((cell, Value.to_rat u.Update.new_value) :: acc) over rest
                | `Override text ->
                  let tu = Database.find s.db u.Update.tid in
                  let rs =
                    Schema.relation (Database.schema s.db) (Tuple.relation tu)
                  in
                  let dom = Schema.attr_domain rs u.Update.attr in
                  (match Value.parse_opt dom text with
                   | None ->
                     Error
                       (Printf.sprintf "override value %S does not fit domain %s"
                          text (Value.domain_name dom))
                   | Some v -> to_pins ((cell, Value.to_rat v) :: acc) true rest)))
        in
        match to_pins [] false decisions with
        | Error _ as e -> e
        | Ok (new_pins, any_override) ->
          s.examined <- s.examined + List.length decisions;
          s.validated <- List.map fst new_pins @ s.validated;
          s.pins <- new_pins @ s.pins;
          let covered_all = List.length decisions = List.length pending in
          if covered_all && not any_override then
            s.phase <- Converged (Update.apply s.db rho)
          else resolve ~mapper ?cancel s;
          Ok s.phase
      end
    end

let touch s ~now_ms ~ttl_ms = s.expires_at_ms <- now_ms +. ttl_ms

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

(** TTL-evicting session store.  Every successful lookup refreshes the
    session's deadline; {!sweep} (called periodically by the server's
    accept loop) drops sessions idle longer than the TTL. *)
module Store = struct
  type session = t

  type t = {
    tbl : (string, session) Hashtbl.t;
    mu : Mutex.t;
    ttl_ms : float;
    max_sessions : int;
    clock_ms : unit -> float;
    mutable next_id : int;
  }

  let create ?(clock_ms = Obs.now_ms) ~ttl_ms ~max_sessions () =
    { tbl = Hashtbl.create 16; mu = Mutex.create (); ttl_ms; max_sessions;
      clock_ms; next_id = 1 }

  let locked st f =
    Mutex.lock st.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock st.mu) f

  let ttl_ms st = st.ttl_ms

  let count st = locked st (fun () -> Hashtbl.length st.tbl)

  let fresh_id st =
    locked st (fun () ->
        let n = st.next_id in
        st.next_id <- n + 1;
        Printf.sprintf "s%d" n)

  (** Raise the id counter to at least [n] — used after crash recovery so
      fresh ids never collide with replayed sessions.  Never lowers it. *)
  let set_next_id st n = locked st (fun () -> st.next_id <- max st.next_id n)

  (** Register a freshly created session.  [Error] when the store is at
      [max_sessions] (after evicting anything expired). *)
  let put st s =
    locked st @@ fun () ->
    let now = st.clock_ms () in
    Hashtbl.iter
      (fun id s' -> if s'.expires_at_ms < now then Hashtbl.remove st.tbl id)
      (Hashtbl.copy st.tbl);
    if Hashtbl.length st.tbl >= st.max_sessions then
      Error "session store full"
    else begin
      Hashtbl.replace st.tbl s.id s;
      Ok ()
    end

  (** Look up a live session, refreshing its TTL.  Expired sessions are
      dropped and reported as absent. *)
  let find st id =
    locked st @@ fun () ->
    match Hashtbl.find_opt st.tbl id with
    | None -> None
    | Some s ->
      let now = st.clock_ms () in
      if s.expires_at_ms < now then begin
        Hashtbl.remove st.tbl id;
        None
      end
      else begin
        touch s ~now_ms:now ~ttl_ms:st.ttl_ms;
        Some s
      end

  let close st id =
    locked st @@ fun () ->
    let existed = Hashtbl.mem st.tbl id in
    Hashtbl.remove st.tbl id;
    existed

  (** Evict every expired session; returns [(id, origin_trace)] per
      dropped session so the caller can log which traces lost state. *)
  let sweep st =
    locked st @@ fun () ->
    let now = st.clock_ms () in
    let dead =
      Hashtbl.fold
        (fun id s acc ->
          if s.expires_at_ms < now then (id, s.origin_trace) :: acc else acc)
        st.tbl []
    in
    List.iter (fun (id, _) -> Hashtbl.remove st.tbl id) dead;
    dead
end
