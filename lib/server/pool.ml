(** Fixed-size domain worker pool with a bounded job queue.

    Compute jobs (repairs, acquisitions, session re-solves) run on
    [Domain.spawn]ed workers so they execute in parallel; I/O threads
    submit jobs and wait on futures.  The queue is bounded: when it is
    full, {!try_submit} refuses the job and the server answers [busy]
    instead of building an unbounded backlog (explicit backpressure).

    Nested parallelism is deadlock-free by construction: {!map} (used by
    the solver to fan out connected components from {e inside} a worker)
    never blocks on a job that no one has started.  Each future can be
    {e claimed} exactly once — by the worker that popped it or by the
    caller of {!map} itself — so a saturated pool degrades to inline
    sequential execution instead of deadlocking. *)

module Cancel = Dart_resilience.Cancel
module Fair_queue = Dart_resilience.Overload.Fair_queue
module Faultsim = Dart_faultsim.Faultsim

type 'a state =
  | Pending of (unit -> 'a)   (** queued or local, not yet claimed *)
  | Running                   (** claimed by some domain/thread *)
  | Done of ('a, exn) result
  | Cancelled

type 'a future = {
  mutable st : 'a state;
  token : Cancel.t;           (* cooperative-cancellation token the job polls *)
  fmu : Mutex.t;
  fcond : Condition.t;
}

type job = Job : _ future -> job

type t = {
  queue : job Fair_queue.t;
  (* Round-robin across client ids: one hot client cannot starve the
     rest (see Dart_resilience.Overload.Fair_queue).  Internal work —
     [map] fan-out, session re-solves — uses the reserved "" client. *)
  capacity : int;
  qmu : Mutex.t;
  qcond : Condition.t;            (* signalled on enqueue and on stop *)
  faults : Faultsim.t;            (* injected worker stalls / crashes *)
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

exception Cancelled_exn

let future ?(cancel = Cancel.none) thunk =
  { st = Pending thunk; token = cancel;
    fmu = Mutex.create (); fcond = Condition.create () }

(* Claim and run a future if it is still pending; no-op otherwise.
   [faults] injects worker stalls/crashes *inside* the claim, so an
   injected crash resolves the future with [Error] exactly like a real
   worker exception would — the pool slot is never poisoned. *)
let run_if_pending ?(faults = Faultsim.none) (Job fut) =
  Mutex.lock fut.fmu;
  match fut.st with
  | Pending thunk ->
    fut.st <- Running;
    Mutex.unlock fut.fmu;
    let result =
      try Faultsim.on_worker_job faults; Ok (thunk ()) with e -> Error e
    in
    Mutex.lock fut.fmu;
    fut.st <- Done result;
    Condition.broadcast fut.fcond;
    Mutex.unlock fut.fmu
  | Running | Done _ | Cancelled -> Mutex.unlock fut.fmu

let worker_loop pool () =
  let rec loop () =
    Mutex.lock pool.qmu;
    while Fair_queue.is_empty pool.queue && not pool.stopping do
      Condition.wait pool.qcond pool.qmu
    done;
    (* On shutdown, drain what is already queued, then exit. *)
    match Fair_queue.pop pool.queue with
    | None -> Mutex.unlock pool.qmu
    | Some job ->
      Mutex.unlock pool.qmu;
      run_if_pending ~faults:pool.faults job;
      loop ()
  in
  loop ()

(** [create ~domains ~queue_capacity] spawns [domains] (>= 1) worker
    domains.  [queue_capacity] bounds jobs waiting to start (in-flight
    jobs do not count).  [faults] injects stalls/crashes into worker job
    execution (chaos testing); default none. *)
let create ?(faults = Faultsim.none) ~domains ~queue_capacity () =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  if queue_capacity < 1 then invalid_arg "Pool.create: queue_capacity must be >= 1";
  let pool =
    { queue = Fair_queue.create (); capacity = queue_capacity;
      qmu = Mutex.create (); qcond = Condition.create (); faults;
      stopping = false; workers = [||] }
  in
  pool.workers <-
    Array.init domains (fun _ -> Domain.spawn (fun () -> worker_loop pool ()));
  pool

let size pool = Array.length pool.workers

(** Jobs waiting in the queue right now (queued, not yet claimed). *)
let depth pool =
  Mutex.lock pool.qmu;
  let n = Fair_queue.length pool.queue in
  Mutex.unlock pool.qmu;
  n

(* Enqueue a job if there is room; used by both submit and map.
   [client] picks the fair-queue slot; "" is the internal lane. *)
let try_enqueue ?(client = "") pool job =
  Mutex.lock pool.qmu;
  if pool.stopping || Fair_queue.length pool.queue >= pool.capacity then begin
    Mutex.unlock pool.qmu;
    false
  end
  else begin
    Fair_queue.push pool.queue ~client job;
    Condition.signal pool.qcond;
    Mutex.unlock pool.qmu;
    true
  end

(** Submit a thunk; [None] when the queue is full (backpressure) or the
    pool is shutting down.  [cancel] is remembered on the future so
    {!request_cancel} can signal the job after it starts running.
    [client] is the fair-queue identity: jobs are dequeued round-robin
    across client ids, oldest-first within one id. *)
let try_submit ?cancel ?client pool thunk =
  let fut = future ?cancel thunk in
  if try_enqueue ?client pool (Job fut) then Some fut else None

type 'a outcome = [ `Done of ('a, exn) result | `Cancelled | `Pending_or_running ]

let poll fut : _ outcome =
  Mutex.lock fut.fmu;
  let r =
    match fut.st with
    | Done r -> `Done r
    | Cancelled -> `Cancelled
    | Pending _ | Running -> `Pending_or_running
  in
  Mutex.unlock fut.fmu;
  r

(** Cancel a future that has not started; [true] iff it will never run. *)
let try_cancel fut =
  Mutex.lock fut.fmu;
  let cancelled =
    match fut.st with
    | Pending _ ->
      fut.st <- Cancelled;
      Condition.broadcast fut.fcond;
      true
    | Running | Done _ | Cancelled -> false
  in
  Mutex.unlock fut.fmu;
  cancelled

(** Best-effort cancellation: deschedule the job if it has not started
    ([true] — it will never run); otherwise fire its cooperative token so
    the running solve aborts at its next poll point ([false]). *)
let request_cancel fut =
  if try_cancel fut then true
  else begin
    Cancel.cancel fut.token;
    false
  end

(* Wait for completion; if the future was never enqueued (or the pool is
   saturated), the caller claims and runs it inline rather than blocking
   on work nobody owns. *)
let claim_or_await fut =
  Mutex.lock fut.fmu;
  match fut.st with
  | Pending thunk ->
    fut.st <- Running;
    Mutex.unlock fut.fmu;
    let result = try Ok (thunk ()) with e -> Error e in
    Mutex.lock fut.fmu;
    fut.st <- Done result;
    Condition.broadcast fut.fcond;
    Mutex.unlock fut.fmu;
    result
  | Running | Done _ | Cancelled ->
    let rec wait () =
      match fut.st with
      | Done r -> Mutex.unlock fut.fmu; r
      | Cancelled -> Mutex.unlock fut.fmu; Error Cancelled_exn
      | Pending _ | Running ->
        Condition.wait fut.fcond fut.fmu;
        wait ()
    in
    wait ()

(** Block until the future completes (running it inline if unclaimed). *)
let await fut =
  match claim_or_await fut with Ok v -> v | Error e -> raise e

(** Parallel map over the pool, safe to call from inside a worker: order
    and length are preserved; the calling thread helps execute items the
    pool has no room for (or that no worker picked up yet), so nested
    [map]s cannot deadlock.  The first exception (in list order) is
    re-raised after every item has settled. *)
let map pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs ->
    (* Capture the caller's trace context (e.g. the repair.card_minimal
       span) and rebind it in whichever domain ends up running each item,
       so per-component spans stitch into the request's tree instead of
       starting orphan traces on the worker domains. *)
    let ctx = Dart_obs.Obs.Trace.current () in
    let f =
      match ctx with
      | None -> f
      | Some _ -> fun x -> Dart_obs.Obs.Trace.with_context ctx (fun () -> f x)
    in
    let futs = List.map (fun x -> future (fun () -> f x)) xs in
    (* Best effort: offer every item to the pool; refusals stay local and
       will be claimed inline below. *)
    List.iter (fun fut -> ignore (try_enqueue pool (Job fut))) futs;
    let results = List.map claim_or_await futs in
    List.map (function Ok v -> v | Error e -> raise e) results

(** A {!Dart_repair.Solver.mapper} backed by this pool: connected
    components of one repair solve in parallel. *)
let solver_mapper pool : Dart_repair.Solver.mapper =
  { Dart_repair.Solver.map = (fun f xs -> map pool f xs) }

(** Stop accepting new jobs, drain the queue, and join the workers.
    Futures still [Pending] when their turn comes are executed (drain
    semantics) — cancel them first for a faster stop. *)
let shutdown pool =
  Mutex.lock pool.qmu;
  pool.stopping <- true;
  Condition.broadcast pool.qcond;
  Mutex.unlock pool.qmu;
  Array.iter Domain.join pool.workers
