(** The dart_server wire protocol.

    Every frame (see {!Frame}) carries one JSON object.  Requests look
    like

    {v {"op":"repair","id":7,"scenario":"cash-budget","document":"...",
        "deadline_ms":5000} v}

    [op] selects the handler; [id], when present, is echoed verbatim in
    the response so clients can pipeline; [deadline_ms] is a relative
    per-request deadline.  Responses are [{"ok":true,...}] or
    [{"ok":false,"error":{"code":...,"message":...}}].

    Ops: [ping], [stats], [acquire], [detect], [repair],
    [session/open], [session/next], [session/decide], [session/close],
    [shutdown].

    Values of database cells travel as strings in {!Value.to_string}
    form and are re-parsed against the schema domain on the server, so
    integers, exact rationals and strings all round-trip losslessly.
    Repair responses are fully deterministic for a given input (solver
    wall-clock time is deliberately {e not} on the wire), so a client can
    compare two servers' answers — or a server's answer against an
    in-process solve — byte for byte. *)

open Dart_relational
open Dart_repair
module Json = Dart_obs.Obs.Json

(** Where a server listens / a client connects. *)
type addr =
  | Unix_sock of string        (** path of a Unix-domain socket *)
  | Tcp of string * int        (** host, port *)

let addr_to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

(* ------------------------------------------------------------------ *)
(* JSON accessors                                                      *)
(* ------------------------------------------------------------------ *)

let member k = function Json.Obj kvs -> List.assoc_opt k kvs | _ -> None
let as_string = function Json.Str s -> Some s | _ -> None
let as_int = function Json.Int i -> Some i | _ -> None
let as_float = function Json.Float f -> Some f | Json.Int i -> Some (float_of_int i) | _ -> None
let as_list = function Json.List l -> Some l | _ -> None
let as_bool = function Json.Bool b -> Some b | _ -> None

let string_field j k = Option.bind (member k j) as_string
let int_field j k = Option.bind (member k j) as_int
let float_field j k = Option.bind (member k j) as_float

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type request = {
  op : string;
  id : Json.t option;          (** echoed verbatim in the response *)
  deadline_ms : float option;  (** relative deadline for heavy ops *)
  trace : (string * string) option;
  (** [(trace_id, parent_span_id)] propagated from the client so the
      server's spans stitch under the client's tree.  Requests only:
      responses stay a pure function of the input (byte-determinism). *)
  client : string option;
  (** self-declared client identity for fair queueing and per-client
      rate limits; absent or malformed = the connection's identity *)
  body : Json.t;               (** the whole request object *)
}

(* Client ids key fair-queue slots and per-client token buckets, so the
   wire parse bounds them: printable ASCII, at most 64 bytes.  The
   "conn-" prefix is reserved for the server's synthetic per-connection
   identities (predictable "conn-<n>" counters) — accepting it on the
   wire would let a client declare another anonymous connection's id
   and share its fair-queue slot and brownout bucket.  Anything else is
   ignored (the request falls back to per-connection identity) rather
   than rejected. *)
let valid_client_id s =
  let n = String.length s in
  n >= 1 && n <= 64
  && String.for_all (fun c -> c >= '!' && c <= '~') s
  && not (String.starts_with ~prefix:"conn-" s)

(* Trace/span ids are [Obs.fresh_id]-style hex tokens.  The wire parse
   must enforce that shape: the trace id ends up in span records, access
   log lines and — critically — flight-dump {e filenames}, so accepting
   an arbitrary string would let a client pick filesystem paths. *)
let valid_trace_id s =
  let n = String.length s in
  n >= 1 && n <= 32
  && String.for_all
       (fun c ->
         (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
         || (c >= 'A' && c <= 'F'))
       s

let trace_of_json j =
  match member "trace" j with
  | Some t -> (
    match (string_field t "trace_id", string_field t "parent_span_id") with
    | Some tid, _ when not (valid_trace_id tid) ->
      (* Malformed trace id: treat the request as untraced (the server
         starts a fresh trace) rather than failing it. *)
      None
    | Some tid, Some psid when valid_trace_id psid -> Some (tid, psid)
    | Some tid, _ -> Some (tid, "")
    | _ -> None)
  | None -> None

let request_of_json j : (request, string) result =
  match j with
  | Json.Obj _ ->
    (match string_field j "op" with
     | None -> Error "request must carry a string \"op\" field"
     | Some op ->
       let client =
         match string_field j "client" with
         | Some c when valid_client_id c -> Some c
         | _ -> None
       in
       Ok { op; id = member "id" j; deadline_ms = float_field j "deadline_ms";
            trace = trace_of_json j; client; body = j })
  | _ -> Error "request must be a JSON object"

let request_to_json ?id ?deadline_ms ?client ?trace ~op params =
  Json.Obj
    (("op", Json.Str op)
     :: (match id with Some i -> [ ("id", i) ] | None -> [])
     @ (match deadline_ms with Some d -> [ ("deadline_ms", Json.Float d) ] | None -> [])
     @ (match client with Some c -> [ ("client", Json.Str c) ] | None -> [])
     @ (match trace with
        | Some (tid, psid) ->
          [ ("trace",
             Json.Obj
               [ ("trace_id", Json.Str tid); ("parent_span_id", Json.Str psid) ]) ]
        | None -> [])
     @ params)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

(** Machine-readable error codes (the [error.code] field). *)
type error_code =
  | Parse_error          (** payload is not valid JSON / not a request *)
  | Bad_request          (** missing or ill-typed parameters *)
  | Unknown_op
  | Unknown_scenario
  | Session_not_found    (** never opened, closed, or TTL-evicted *)
  | Busy                 (** worker queue full — retry later *)
  | Overloaded           (** admission control shed the request — retry later *)
  | Deadline_exceeded
  | Oversized_frame
  | Shutting_down
  | Internal

let error_code_to_string = function
  | Parse_error -> "parse_error"
  | Bad_request -> "bad_request"
  | Unknown_op -> "unknown_op"
  | Unknown_scenario -> "unknown_scenario"
  | Session_not_found -> "session_not_found"
  | Busy -> "busy"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Oversized_frame -> "oversized_frame"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let with_id id fields =
  match id with Some i -> ("id", i) :: fields | None -> fields

let ok ?id fields = Json.Obj (with_id id (("ok", Json.Bool true) :: fields))

let error ?id ?retry_after_ms code message =
  Json.Obj
    (with_id id
       [ ("ok", Json.Bool false);
         ("error",
          Json.Obj
            (("code", Json.Str (error_code_to_string code))
             :: ("message", Json.Str message)
             ::
             (match retry_after_ms with
              | Some ms -> [ ("retry_after_ms", Json.Float ms) ]
              | None -> []))) ])

(** Re-address a response: replace its [id] echo (if any) with [id].
    Used by single-flight coalescing, where one computed response answers
    several requests that differ only in their [id]. *)
let reid ?id j =
  match j with
  | Json.Obj kvs -> Json.Obj (with_id id (List.filter (fun (k, _) -> k <> "id") kvs))
  | j -> j

let response_ok j = member "ok" j = Some (Json.Bool true)

let response_error j =
  match member "error" j with
  | Some e -> (string_field e "code", string_field e "message")
  | None -> (None, None)

(* ------------------------------------------------------------------ *)
(* Domain payloads                                                     *)
(* ------------------------------------------------------------------ *)

(** Relations of a database instance as named CSV blocks. *)
let relations_json db =
  Json.List
    (List.map
       (fun rel ->
         Json.Obj
           [ ("relation", Json.Str rel); ("csv", Json.Str (Csv.of_relation db rel)) ])
       (Schema.relation_names (Database.schema db)))

let update_json db (u : Update.t) =
  let old =
    match Database.find db u.Update.tid with
    | tu ->
      let rs = Schema.relation (Database.schema db) (Tuple.relation tu) in
      Value.to_string (Tuple.value_by_name rs tu u.Update.attr)
    | exception Not_found -> "?"
  in
  Json.Obj
    [ ("tid", Json.Int u.Update.tid); ("attr", Json.Str u.Update.attr);
      ("old", Json.Str old); ("new", Json.Str (Value.to_string u.Update.new_value)) ]

(* solve_ms is intentionally omitted: everything on the wire is a pure
   function of the input, so responses are comparable byte-for-byte. *)
let stats_json (s : Solver.stats) =
  Json.Obj
    [ ("components", Json.Int s.Solver.components);
      ("milp_vars", Json.Int s.Solver.milp_vars);
      ("milp_rows", Json.Int s.Solver.milp_rows);
      ("nodes", Json.Int s.Solver.nodes);
      ("simplex_pivots", Json.Int s.Solver.simplex_pivots);
      ("dual_pivots", Json.Int s.Solver.dual_pivots);
      ("warm_starts", Json.Int s.Solver.warm_starts);
      ("warm_fallbacks", Json.Int s.Solver.warm_fallbacks);
      ("m_retries", Json.Int s.Solver.m_retries);
      ("ground_rows", Json.Int s.Solver.ground_rows);
      ("cells", Json.Int s.Solver.cells) ]

(** The [repair] response payload for a solver result — used by the
    server and by clients/tests that re-solve in process to compare. *)
let repair_fields ~rows db (result : Solver.result) =
  match result with
  | Solver.Consistent -> [ ("status", Json.Str "consistent") ]
  | Solver.Repaired (rho, prov, stats) ->
    [ ("status", Json.Str "repaired");
      ("provenance", Json.Str (Solver.provenance_to_string prov));
      ("updates",
       Json.List (List.map (update_json db) (Solver.display_order rows rho)));
      ("stats", stats_json stats) ]
  | Solver.No_repair stats ->
    [ ("status", Json.Str "no_repair"); ("stats", stats_json stats) ]
  | Solver.Node_budget_exceeded stats ->
    [ ("status", Json.Str "node_budget_exceeded"); ("stats", stats_json stats) ]
  | Solver.Cancelled stats ->
    [ ("status", Json.Str "cancelled"); ("stats", stats_json stats) ]

(** One suggested update awaiting an operator decision ([session/next]). *)
let suggestion_json db (u : Update.t) =
  match update_json db u with
  | Json.Obj fields ->
    let tuple =
      match Database.find db u.Update.tid with
      | tu -> Tuple.to_string tu
      | exception Not_found -> "?"
    in
    Json.Obj (fields @ [ ("tuple", Json.Str tuple) ])
  | j -> j

(** An operator decision as sent by the client.  [`Override] carries the
    actual source value in {!Value.to_string} form; the server re-parses
    it against the cell's schema domain. *)
type decision_wire = {
  d_tid : int;
  d_attr : string;
  d_kind : [ `Accept | `Override of string ];
}

let decision_to_json d =
  Json.Obj
    (("tid", Json.Int d.d_tid) :: ("attr", Json.Str d.d_attr)
     ::
     (match d.d_kind with
      | `Accept -> [ ("decision", Json.Str "accept") ]
      | `Override v -> [ ("decision", Json.Str "override"); ("value", Json.Str v) ]))

let decision_of_json j : (decision_wire, string) result =
  match (int_field j "tid", string_field j "attr", string_field j "decision") with
  | Some d_tid, Some d_attr, Some "accept" -> Ok { d_tid; d_attr; d_kind = `Accept }
  | Some d_tid, Some d_attr, Some "override" ->
    (match string_field j "value" with
     | Some v -> Ok { d_tid; d_attr; d_kind = `Override v }
     | None -> Error "override decision must carry a \"value\"")
  | _, _, Some other -> Error (Printf.sprintf "unknown decision %S" other)
  | _ -> Error "decision must carry \"tid\", \"attr\" and \"decision\""
