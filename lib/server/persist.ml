(** Durable sessions: a sharded command log plus compacted snapshots.

    The server appends one WAL event per session-shaping command {e after}
    it succeeds — open (with the full source document), each applied
    decision round, phase transitions (informational) and close.  Recovery
    rebuilds {!Session.Store} by {e deterministic replay}: re-acquire the
    document, re-create the session, re-apply each decision round in
    order.  Solves are byte-reproducible (PR 5), so the recovered session
    state — proposal, pins, iteration counts, final database — is
    byte-identical to the pre-crash state.

    Events are routed to [Wal] shards by session id.  Once a shard
    accumulates [snapshot_every] events, its live sessions' compacted
    histories are written as an atomic [Snapshot] and the shard's segment
    is truncated, bounding both recovery time and disk use.  A damaged
    WAL tail (torn append from a [kill -9]) is skipped with a warning and
    recovery proceeds from the last good record.

    Logging {e after} the state change (a command log, not a classical
    write-ahead log) means a crash between applying a decision and
    logging it forgets that round — but the client never got an answer
    for it, so its retry against the recovered session re-applies the
    round and converges to the same state. *)

open Dart
module Obs = Dart_obs.Obs
module Json = Obs.Json
module Wal = Dart_durable.Wal
module Snapshot = Dart_durable.Snapshot

let m_recovered = Obs.Metrics.counter "sessions.recovered"

let schema_tag = "dart-durable-snapshot/1"

(* ------------------------------------------------------------------ *)
(* Compacted per-session history                                       *)
(* ------------------------------------------------------------------ *)

(* Everything needed to rebuild one session by replay: its open event
   (scenario + document + knobs) and the decision rounds applied since. *)
type hist = {
  h_open : Json.t;
  mutable h_decides : Json.t list; (* rounds, most recent first *)
  mutable h_last_ms : float;       (* timestamp of the latest event *)
}

type t = {
  wal : Wal.t;
  snapshot_every : int;
  mu : Mutex.t;
  hists : (string, hist) Hashtbl.t;
  mutable max_sid : int;           (* highest numeric "sN" ever seen *)
  mutable last_error : string option;
      (* the most recent append failure, cleared by the next success —
         what the "wal" health check reports (see Server /readyz) *)
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let sid_number sid =
  if String.length sid > 1 && sid.[0] = 's' then
    int_of_string_opt (String.sub sid 1 (String.length sid - 1))
  else None

let note_sid t sid =
  match sid_number sid with
  | Some n when n > t.max_sid -> t.max_sid <- n
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

let ev_open ~sid ~ts_ms ~scenario ~format ~document ~max_iterations
    ~origin_trace =
  Json.Obj
    [ ("ev", Json.Str "open"); ("sid", Json.Str sid);
      ("ts_ms", Json.Float ts_ms); ("scenario", Json.Str scenario);
      ("format", Json.Str format); ("document", Json.Str document);
      ("max_iterations", Json.Int max_iterations);
      ("origin_trace", Json.Str origin_trace) ]

let ev_decide ~sid ~ts_ms decisions =
  Json.Obj
    [ ("ev", Json.Str "decide"); ("sid", Json.Str sid);
      ("ts_ms", Json.Float ts_ms);
      ("decisions", Json.List (List.map Proto.decision_to_json decisions)) ]

let ev_phase ~sid ~ts_ms ~phase =
  Json.Obj
    [ ("ev", Json.Str "phase"); ("sid", Json.Str sid);
      ("ts_ms", Json.Float ts_ms); ("phase", Json.Str phase) ]

let ev_close ~sid ~ts_ms =
  Json.Obj
    [ ("ev", Json.Str "close"); ("sid", Json.Str sid);
      ("ts_ms", Json.Float ts_ms) ]

(* Fold one event into the history table (shared by live appends and
   replay, so both walk the exact same state machine). *)
let apply_event t ev =
  match (Proto.string_field ev "ev", Proto.string_field ev "sid") with
  | Some kind, Some sid ->
    note_sid t sid;
    let ts = Option.value ~default:0.0 (Proto.float_field ev "ts_ms") in
    (match kind with
     | "open" ->
       Hashtbl.replace t.hists sid
         { h_open = ev; h_decides = []; h_last_ms = ts }
     | "decide" -> (
       match Hashtbl.find_opt t.hists sid with
       | Some h ->
         h.h_decides <- ev :: h.h_decides;
         h.h_last_ms <- ts
       | None -> ())
     | "phase" -> (
       match Hashtbl.find_opt t.hists sid with
       | Some h -> h.h_last_ms <- ts
       | None -> ())
     | "close" -> Hashtbl.remove t.hists sid
     | _ -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Snapshots (compacted histories)                                     *)
(* ------------------------------------------------------------------ *)

let hist_to_json sid (h : hist) =
  Json.Obj
    [ ("sid", Json.Str sid); ("open", h.h_open);
      ("decides", Json.List (List.rev h.h_decides));
      ("last_ms", Json.Float h.h_last_ms) ]

(* Called with [t.mu] held. *)
let snapshot_shard_locked t shard =
  let sessions =
    Hashtbl.fold
      (fun sid h acc ->
        if Wal.shard_of t.wal sid = shard then hist_to_json sid h :: acc
        else acc)
      t.hists []
  in
  Snapshot.save ~dir:(Wal.dir t.wal) ~shard
    (Json.Obj
       [ ("schema", Json.Str schema_tag); ("max_sid", Json.Int t.max_sid);
         ("sessions", Json.List sessions) ]);
  Wal.truncate_shard t.wal shard

let append t ~sid ev =
  locked t (fun () ->
      apply_event t ev;
      (match Wal.append t.wal ~key:sid ev with
       | () -> t.last_error <- None
       | exception (Wal.Append_failed msg as e) ->
         t.last_error <- Some msg;
         raise e);
      let shard = Wal.shard_of t.wal sid in
      if Wal.appended t.wal shard >= t.snapshot_every then
        snapshot_shard_locked t shard)

(** The most recent WAL append failure, [None] once appends succeed
    again — drives the readiness "wal" health check. *)
let last_append_error t = locked t (fun () -> t.last_error)

let wal_shards t = Wal.shards t.wal

(* ------------------------------------------------------------------ *)
(* Public logging API                                                  *)
(* ------------------------------------------------------------------ *)

let log_open t ~sid ~scenario ~format ~document ~max_iterations ~origin_trace =
  append t ~sid
    (ev_open ~sid ~ts_ms:(Obs.now_ms ()) ~scenario ~format ~document
       ~max_iterations ~origin_trace)

let log_decide t ~sid decisions =
  append t ~sid (ev_decide ~sid ~ts_ms:(Obs.now_ms ()) decisions)

let log_phase t ~sid ~phase =
  append t ~sid (ev_phase ~sid ~ts_ms:(Obs.now_ms ()) ~phase)

let log_close t ~sid = append t ~sid (ev_close ~sid ~ts_ms:(Obs.now_ms ()))

let open_ ?(shards = Wal.default_shards) ?(snapshot_every = 64) dir =
  { wal = Wal.create ~shards dir; snapshot_every; mu = Mutex.create ();
    hists = Hashtbl.create 16; max_sid = 0; last_error = None }

let close t = locked t (fun () -> Wal.close t.wal)

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

type recovery = {
  rec_recovered : int;     (** sessions rebuilt and registered *)
  rec_expired : int;       (** sessions skipped: idle past the TTL *)
  rec_failed : int;        (** sessions whose replay failed *)
  rec_damaged_shards : int; (** shards with a skipped damaged tail *)
  rec_next_id : int;       (** next session id after recovery *)
}

(* Load a snapshot's sessions into the history table (with [t.mu] held). *)
let load_snapshot_locked t shard =
  match Snapshot.load ~dir:(Wal.dir t.wal) ~shard with
  | None -> ()
  | Some j ->
    (match Proto.int_field j "max_sid" with
     | Some n when n > t.max_sid -> t.max_sid <- n
     | _ -> ());
    (match Option.bind (Proto.member "sessions" j) Proto.as_list with
     | None -> ()
     | Some sessions ->
       List.iter
         (fun sj ->
           match (Proto.string_field sj "sid", Proto.member "open" sj) with
           | Some sid, Some op ->
             note_sid t sid;
             let decides =
               match Option.bind (Proto.member "decides" sj) Proto.as_list with
               | Some l -> List.rev l
               | None -> []
             in
             let last =
               Option.value ~default:0.0 (Proto.float_field sj "last_ms")
             in
             Hashtbl.replace t.hists sid
               { h_open = op; h_decides = decides; h_last_ms = last }
           | _ -> ())
         sessions)

let format_of_string = function
  | "csv" -> Convert.Csv
  | "tsv" -> Convert.Tsv
  | "fixed" -> Convert.Fixed_width
  | _ -> Convert.Html

(* Rebuild one session from its history by deterministic replay.  [None]
   when the history is unusable (unknown scenario, malformed open event,
   acquisition failure). *)
let rebuild ~scenarios ~mapper ~max_nodes ~store sid (h : hist) =
  match
    ( Proto.string_field h.h_open "scenario",
      Proto.string_field h.h_open "document" )
  with
  | Some scname, Some document -> (
    match List.assoc_opt scname scenarios with
    | None ->
      Obs.log Obs.Warn "durable.recover_unknown_scenario"
        ~attrs:[ ("sid", Obs.Str sid); ("scenario", Obs.Str scname) ];
      None
    | Some scenario -> (
      try
        let format =
          format_of_string
            (Option.value ~default:"html" (Proto.string_field h.h_open "format"))
        in
        let max_iterations =
          Option.value ~default:50 (Proto.int_field h.h_open "max_iterations")
        in
        let origin_trace =
          Option.value ~default:"" (Proto.string_field h.h_open "origin_trace")
        in
        let acq = Pipeline.acquire scenario ~format document in
        let s =
          Session.create ~id:sid ~origin_trace ~scenario ~db:acq.Pipeline.db
            ~max_nodes ~max_iterations ~mapper ~now_ms:(Obs.now_ms ())
            ~ttl_ms:(Session.Store.ttl_ms store) ()
        in
        List.iter
          (fun dev ->
            let decisions =
              match Option.bind (Proto.member "decisions" dev) Proto.as_list with
              | Some l ->
                List.filter_map
                  (fun d -> Result.to_option (Proto.decision_of_json d))
                  l
              | None -> []
            in
            if decisions <> [] then
              match Session.decide ~mapper s decisions with
              | Ok _ -> ()
              | Error msg ->
                (* The round succeeded before the crash, so this signals a
                   scenario/config change since.  Keep what replayed so
                   far: the operator resumes from a consistent prefix. *)
                Obs.log Obs.Warn "durable.recover_decide_failed"
                  ~attrs:[ ("sid", Obs.Str sid); ("why", Obs.Str msg) ])
          (List.rev h.h_decides);
        Some s
      with e ->
        Obs.log Obs.Warn "durable.recover_failed"
          ~attrs:
            [ ("sid", Obs.Str sid); ("why", Obs.Str (Printexc.to_string e)) ];
        None))
  | _ ->
    Obs.log Obs.Warn "durable.recover_malformed_open"
      ~attrs:[ ("sid", Obs.Str sid) ];
    None

(** Replay snapshots + WAL tails and register every still-live session in
    [store].  Call once, after [open_] and before serving traffic. *)
let recover t ~scenarios ~mapper ~max_nodes ~store =
  locked t @@ fun () ->
  let damaged = ref 0 in
  for shard = 0 to Wal.shards t.wal - 1 do
    load_snapshot_locked t shard;
    let replayed = Wal.replay_shard ~dir:(Wal.dir t.wal) ~shard in
    if replayed.Wal.damage <> None then incr damaged;
    List.iter (apply_event t) replayed.Wal.events
  done;
  let now = Obs.now_ms () in
  let ttl = Session.Store.ttl_ms store in
  let recovered = ref 0 and expired = ref 0 and failed = ref 0 in
  let drop = ref [] in
  (* Deterministic rebuild order (sorted by sid), so recovery itself is
     reproducible run to run. *)
  let all =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.hists [])
  in
  List.iter
    (fun (sid, h) ->
      if now -. h.h_last_ms > ttl then begin
        incr expired;
        drop := sid :: !drop
      end
      else
        match rebuild ~scenarios ~mapper ~max_nodes ~store sid h with
        | None ->
          incr failed;
          drop := sid :: !drop
        | Some s -> (
          match Session.Store.put store s with
          | Ok () -> incr recovered
          | Error msg ->
            Obs.log Obs.Warn "durable.recover_store_full"
              ~attrs:[ ("sid", Obs.Str sid); ("why", Obs.Str msg) ];
            incr failed;
            drop := sid :: !drop))
    all;
  List.iter (Hashtbl.remove t.hists) !drop;
  Session.Store.set_next_id store (t.max_sid + 1);
  Obs.Metrics.add m_recovered !recovered;
  if !recovered + !expired + !failed > 0 || !damaged > 0 then
    Obs.log Obs.Info "durable.recovered"
      ~attrs:
        [ ("recovered", Obs.Int !recovered); ("expired", Obs.Int !expired);
          ("failed", Obs.Int !failed); ("damaged_shards", Obs.Int !damaged) ];
  { rec_recovered = !recovered; rec_expired = !expired; rec_failed = !failed;
    rec_damaged_shards = !damaged; rec_next_id = t.max_sid + 1 }
