(** Client side of the wire protocol: one blocking connection, plus a
    driver that runs the whole §6.3 validation loop over a session.

    Used by [dart-cli client] for scripting and CI, by the serve bench,
    and by the protocol tests. *)

module Obs = Dart_obs.Obs
module Json = Obs.Json

type t = {
  fd : Unix.file_descr;
  timeout_s : float;            (** per-response read timeout *)
  client : string option;       (** identity sent with every request, for
                                    the server's fair queue / rate limits *)
  mutable next_id : int;
}

(** Connect to a server.  [timeout_s] bounds each response wait
    (default 60s — repairs can be slow).  [client] is a self-declared
    identity attached to every request: the server fair-queues and (under
    brownout) rate-limits per client id. *)
let connect ?(timeout_s = 60.0) ?client (addr : Proto.addr) =
  let fd =
    match addr with
    | Proto.Unix_sock path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
    | Proto.Tcp (host, port) ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (inet, port));
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      fd
  in
  { fd; timeout_s; client; next_id = 1 }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let with_connection ?timeout_s ?client addr f =
  let c = connect ?timeout_s ?client addr in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)

(** One raw round trip: send a JSON document, read one JSON response. *)
let roundtrip c (req : Json.t) : (Json.t, string) result =
  match Frame.write c.fd (Json.to_string req) with
  | exception (Unix.Unix_error _ as e) ->
    Error ("send failed: " ^ Printexc.to_string e)
  | () ->
    (match Frame.read ~timeout:c.timeout_s c.fd with
     | Error e -> Error (Frame.read_error_to_string e)
     | Ok payload ->
       (match Json.of_string payload with
        | Error msg -> Error ("malformed response: " ^ msg)
        | Ok j -> Ok j))

(** Issue [op] with [params]; an [id] is attached automatically.  [Ok]
    is the response body iff the server answered [{"ok":true}];
    otherwise the error carries the server's [code: message]. *)
let rpc ?deadline_ms c ~op params : (Json.t, string) result =
  let id = c.next_id in
  c.next_id <- id + 1;
  (* When tracing is on, the whole round trip is a [client.rpc] span and
     the request envelope carries its identity, so the server's spans
     stitch underneath it.  Responses never carry trace data (they must
     stay byte-identical to an in-process solve). *)
  let call () =
    let trace =
      if Obs.enabled () then
        Option.map
          (fun ctx ->
            (ctx.Obs.Trace.trace_id, ctx.Obs.Trace.parent_span_id))
          (Obs.Trace.current ())
      else None
    in
    match
      roundtrip c
        (Proto.request_to_json ~id:(Json.Int id) ?deadline_ms ?client:c.client
           ?trace ~op params)
    with
    | Error _ as e -> e
    | Ok resp ->
      if Proto.response_ok resp then Ok resp
      else
        let code, msg = Proto.response_error resp in
        Error
          (Printf.sprintf "%s: %s"
             (Option.value ~default:"error" code)
             (Option.value ~default:"(no message)" msg))
  in
  if Obs.enabled () then
    Obs.span "client.rpc" ~attrs:[ ("op", Obs.Str op) ] call
  else call ()

(* ------------------------------------------------------------------ *)
(* Retry                                                               *)
(* ------------------------------------------------------------------ *)

(** Whether an [rpc] error message reports a transient condition worth
    retrying: backpressure ([busy]) or a dropped/garbled connection (a
    chaos-injected truncation or a server restart — the next attempt
    reconnects).  Semantic errors ([bad_request], [no_repair], ...) and
    [deadline_exceeded] (the deadline is already gone) are permanent. *)
let transient_error msg =
  let has_prefix p =
    String.length msg >= String.length p && String.sub msg 0 (String.length p) = p
  in
  has_prefix "busy" || has_prefix "overloaded" || has_prefix "connection closed"
  || has_prefix "malformed response" || has_prefix "send failed"
  || has_prefix "read timeout" || has_prefix "shutting_down"

(** Run [f], reconnecting and retrying with exponential backoff + jitter
    (see {!Dart_resilience.Retry}) while it returns a transient error.
    [f] receives a fresh connection each attempt. *)
let with_retries ?policy ?sleep_ms ?timeout_s addr f =
  Dart_resilience.Retry.run ?policy ?sleep_ms ~retryable:transient_error
    (fun () ->
      try with_connection ?timeout_s addr f
      with Unix.Unix_error _ as e -> Error ("send failed: " ^ Printexc.to_string e))

let ping c = Result.map (fun _ -> ()) (rpc c ~op:"ping" [])
let stats c = rpc c ~op:"stats" []

(** Prometheus text exposition fetched over the wire protocol. *)
let metrics c =
  Result.bind (rpc c ~op:"metrics" []) (fun body ->
      match Proto.string_field body "prometheus" with
      | Some text -> Ok text
      | None -> Error "malformed response: missing \"prometheus\"")
let shutdown c = Result.map (fun _ -> ()) (rpc c ~op:"shutdown" [])

let doc_params ~scenario ~document ?format () =
  [ ("scenario", Json.Str scenario); ("document", Json.Str document) ]
  @ (match format with Some f -> [ ("format", Json.Str f) ] | None -> [])

let acquire ?deadline_ms c ~scenario ~document ?format () =
  rpc ?deadline_ms c ~op:"acquire" (doc_params ~scenario ~document ?format ())

let detect ?deadline_ms c ~scenario ~document ?format () =
  rpc ?deadline_ms c ~op:"detect" (doc_params ~scenario ~document ?format ())

let repair ?deadline_ms c ~scenario ~document ?format () =
  rpc ?deadline_ms c ~op:"repair" (doc_params ~scenario ~document ?format ())

let session_open ?deadline_ms c ~scenario ~document ?format () =
  rpc ?deadline_ms c ~op:"session/open" (doc_params ~scenario ~document ?format ())

let session_next c ~session =
  rpc c ~op:"session/next" [ ("session", Json.Str session) ]

let session_decide ?deadline_ms c ~session decisions =
  rpc ?deadline_ms c ~op:"session/decide"
    [ ("session", Json.Str session);
      ("decisions", Json.List (List.map Proto.decision_to_json decisions)) ]

let session_close c ~session =
  rpc c ~op:"session/close" [ ("session", Json.Str session) ]

(* ------------------------------------------------------------------ *)
(* Validation-loop driver                                              *)
(* ------------------------------------------------------------------ *)

(** What the operator sees for one suggested update. *)
type suggestion = {
  tid : int;
  attr : string;
  current : string;    (** value in the acquired instance *)
  suggested : string;  (** value the repair proposes *)
  tuple : string;      (** rendered tuple, to locate the source row *)
}

type operator = suggestion -> [ `Accept | `Override of string ]

let accept_all : operator = fun _ -> `Accept

type validate_outcome = {
  session : string;
  status : string;                   (** "converged" | "failed" *)
  iterations : int;
  examined : int;
  pins : int;
  relations : (string * string) list; (** relation name -> CSV, when converged *)
}

let suggestion_of_json j =
  match
    ( Proto.int_field j "tid", Proto.string_field j "attr",
      Proto.string_field j "old", Proto.string_field j "new" )
  with
  | Some tid, Some attr, Some current, Some suggested ->
    Some
      { tid; attr; current; suggested;
        tuple = Option.value ~default:"?" (Proto.string_field j "tuple") }
  | _ -> None

let relations_of_json body =
  match Option.bind (Proto.member "relations" body) Proto.as_list with
  | None -> []
  | Some rels ->
    List.filter_map
      (fun r ->
        match (Proto.string_field r "relation", Proto.string_field r "csv") with
        | Some n, Some csv -> Some (n, csv)
        | _ -> None)
      rels

let summary_of body ~session =
  { session;
    status = Option.value ~default:"?" (Proto.string_field body "status");
    iterations = Option.value ~default:0 (Proto.int_field body "iterations");
    examined = Option.value ~default:0 (Proto.int_field body "examined");
    pins = Option.value ~default:0 (Proto.int_field body "pins");
    relations = relations_of_json body }

(** Drive a full supervised validation over the wire: open a session,
    show every pending update to [operator], send the decisions, repeat
    until the session converges or fails.  Mirrors
    [Validation.run ?batch:None]. *)
let validate ?deadline_ms ?(max_rounds = 100) c ~scenario ~document ?format
    ~operator () : (validate_outcome, string) result =
  match session_open ?deadline_ms c ~scenario ~document ?format () with
  | Error _ as e -> e |> Result.map (fun _ -> assert false)
  | Ok body ->
    let session =
      Option.value ~default:"?" (Proto.string_field body "session")
    in
    let rec loop rounds body =
      match Proto.string_field body "status" with
      | Some "converged" | Some "failed" -> Ok (summary_of body ~session)
      | _ when rounds >= max_rounds -> Error "validation did not settle"
      | _ ->
        (match session_next c ~session with
         | Error _ as e -> e |> Result.map (fun _ -> assert false)
         | Ok next_body ->
           (match Proto.string_field next_body "status" with
            | Some "converged" | Some "failed" -> Ok (summary_of next_body ~session)
            | _ ->
              let updates =
                match
                  Option.bind (Proto.member "updates" next_body) Proto.as_list
                with
                | Some us -> List.filter_map suggestion_of_json us
                | None -> []
              in
              if updates = [] then Error "session pending but no updates offered"
              else begin
                let decisions =
                  List.map
                    (fun s ->
                      { Proto.d_tid = s.tid; d_attr = s.attr;
                        d_kind =
                          (match operator s with
                           | `Accept -> `Accept
                           | `Override v -> `Override v) })
                    updates
                in
                match session_decide ?deadline_ms c ~session decisions with
                | Error _ as e -> e |> Result.map (fun _ -> assert false)
                | Ok body -> loop (rounds + 1) body
              end))
    in
    let result = loop 0 body in
    ignore (session_close c ~session);
    result
