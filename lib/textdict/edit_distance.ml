(** Edit distances and similarity scores for lexical repair.

    The wrapper corrects symbol-recognition errors in non-numerical strings
    against a scenario dictionary (paper §2, §6.2: "bgnning cesh" →
    "beginning cash").  Damerau–Levenshtein (with adjacent transpositions)
    matches the OCR channel's error modes. *)

(** Classic Levenshtein distance (insert/delete/substitute, unit costs). *)
let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) (fun j -> j) in
    let cur = Array.make (lb + 1) 0 in
    for i = 1 to la do
      cur.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

(** Damerau–Levenshtein: Levenshtein plus adjacent transposition as a single
    edit.  This is the {e unrestricted} variant (a substring may be edited
    after being transposed), not the cheaper optimal-string-alignment one:
    OSA violates the triangle inequality (d("ca","abc") = 3 > d("ca","ac") +
    d("ac","abc") = 2), which breaks the BK-tree's pruning invariant and
    made radius queries silently drop matches.  True DL is a metric. *)
let damerau_levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let inf = la + lb in
    (* h is offset by one row/column of sentinels (the standard DL layout),
       stored flat for locality: h.((i+1)*w + j+1) is the distance between
       a[0..i) and b[0..j).  The transposition case reads an arbitrary
       earlier row, so the full matrix must be kept. *)
    let w = lb + 2 in
    let h = Array.make ((la + 2) * w) 0 in
    h.(0) <- inf;
    for i = 0 to la do
      h.((i + 1) * w) <- inf;
      h.(((i + 1) * w) + 1) <- i
    done;
    for j = 0 to lb do
      h.(j + 1) <- inf;
      h.(w + j + 1) <- j
    done;
    let last_row = Array.make 256 0 in (* last row where each byte occurred in a *)
    for i = 1 to la do
      let ca = a.[i - 1] in
      let last_col = ref 0 in (* last column where a.[i-1] occurred in b *)
      let base = (i + 1) * w and prev = i * w in
      for j = 1 to lb do
        let cb = b.[j - 1] in
        let i' = last_row.(Char.code cb) in
        let j' = !last_col in
        let cost = if ca = cb then begin last_col := j; 0 end else 1 in
        h.(base + j + 1) <-
          min
            (min (h.(prev + j) + cost) (* substitute / match *)
               (h.(base + j) + 1)) (* insert *)
            (min (h.(prev + j + 1) + 1) (* delete *)
               (h.((i' * w) + j') + (i - i' - 1) + 1 + (j - j' - 1))) (* transpose *)
      done;
      last_row.(Char.code ca) <- i
    done;
    h.(((la + 1) * w) + lb + 1)
  end

(** Normalized similarity in [0, 1]: 1 = identical, towards 0 with distance.
    This is the cell matching score of §6.2 (Example 13 shows a 90% score
    for a near-match). *)
let similarity a b =
  let la = String.length a and lb = String.length b in
  if la = 0 && lb = 0 then 1.0
  else begin
    let d = damerau_levenshtein a b in
    1.0 -. (float_of_int d /. float_of_int (max la lb))
  end

(** Case/whitespace-insensitive similarity: the usual preprocessing for
    scanned labels. *)
let similarity_normalized a b =
  let norm s = String.lowercase_ascii (String.trim s) in
  similarity (norm a) (norm b)
