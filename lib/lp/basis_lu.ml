(** Basis factorization for the revised simplex: LU in product form (an
    eta file), with Markowitz-style pivot selection at refactorization and
    product-form updates between refactorizations.

    A factorization is a sequence of eta operations.  Eta [k] records a
    pivot row [er], pivot value [ep] and the off-pivot nonzeros of the
    (partially eliminated) basis column it came from.  Applying the etas in
    order to a vector [a] performs exactly the Gaussian elimination of
    [B \ a] (FTRAN); applying their transposes in reverse order solves the
    transposed system (BTRAN).  Because refactorization processes columns
    in (near-)triangular order chosen to minimise fill, the factor etas
    are the L and U columns of an LU decomposition stored in product form;
    each subsequent basis change appends one more eta built from the
    FTRAN-transformed entering column (the classic product-form update).

    The structure is field-generic: with {!Field_rat} every solve is exact
    (the residual test in the suite pins ‖B·x_B − b‖ = 0); with
    {!Field_float} a threshold guards pivot selection and the caller
    refactorizes on drift. *)

module Make (F : Field.S) = struct
  exception Singular

  type eta = {
    er : int;             (* pivot row *)
    ep : F.t;             (* pivot value *)
    idx : int array;      (* off-pivot rows *)
    vals : F.t array;     (* off-pivot values *)
  }

  let dummy_eta = { er = 0; ep = F.one; idx = [||]; vals = [||] }

  type t = {
    mutable etas : eta array;     (* first [n_etas] entries are live *)
    mutable n_etas : int;
    mutable factor_etas : int;    (* etas produced by the last [factorize] *)
    mutable factor_nnz : int;     (* off-pivot entries in the factor etas *)
    mutable update_nnz : int;     (* off-pivot entries in update etas *)
  }

  let create () =
    { etas = [||]; n_etas = 0; factor_etas = 0; factor_nnz = 0; update_nnz = 0 }

  let eta_count t = t.n_etas
  let update_count t = t.n_etas - t.factor_etas
  let factor_nnz t = t.factor_nnz
  let eta_nnz t = t.factor_nnz + t.update_nnz

  let push t e =
    if t.n_etas >= Array.length t.etas then begin
      let cap = max 16 (2 * Array.length t.etas) in
      let grown = Array.make cap dummy_eta in
      Array.blit t.etas 0 grown 0 t.n_etas;
      t.etas <- grown
    end;
    t.etas.(t.n_etas) <- e;
    t.n_etas <- t.n_etas + 1

  (* FTRAN step of one eta: x.(er) <- x.(er)/ep; x.(i) -= v_i * x.(er). *)
  let apply_ftran e (x : F.t array) =
    let xr = x.(e.er) in
    if not (F.is_zero xr) then begin
      let piv = F.div xr e.ep in
      x.(e.er) <- piv;
      for k = 0 to Array.length e.idx - 1 do
        x.(e.idx.(k)) <- F.sub x.(e.idx.(k)) (F.mul e.vals.(k) piv)
      done
    end

  (* BTRAN step (the transpose): x.(er) <- (x.(er) - Σ v_i·x.(i)) / ep. *)
  let apply_btran e (x : F.t array) =
    let acc = ref x.(e.er) in
    for k = 0 to Array.length e.idx - 1 do
      let xi = x.(e.idx.(k)) in
      if not (F.is_zero xi) then acc := F.sub !acc (F.mul e.vals.(k) xi)
    done;
    x.(e.er) <- F.div !acc e.ep

  (** In-place solve of [B y = x]: afterwards the value of the basic
      variable sitting at row slot [r] is [x.(r)]. *)
  let ftran t (x : F.t array) =
    for k = 0 to t.n_etas - 1 do
      apply_ftran t.etas.(k) x
    done

  (** In-place solve of [Bᵀ y = x] (row-space: simplex multipliers from
      basic costs, or the pivot row from a unit vector). *)
  let btran t (x : F.t array) =
    for k = t.n_etas - 1 downto 0 do
      apply_btran t.etas.(k) x
    done

  (* Build an eta from the nonzeros of a dense spike, pivoting at [row]. *)
  let eta_of_spike ~(spike : F.t array) ~row =
    let p = spike.(row) in
    if F.is_zero p then raise Singular;
    let count = ref 0 in
    Array.iteri
      (fun i v -> if i <> row && not (F.is_zero v) then incr count)
      spike;
    let idx = Array.make !count 0 in
    let vals = Array.make !count F.zero in
    let k = ref 0 in
    Array.iteri
      (fun i v ->
        if i <> row && not (F.is_zero v) then begin
          idx.(!k) <- i;
          vals.(!k) <- v;
          incr k
        end)
      spike;
    { er = row; ep = p; idx; vals }

  (** Product-form update after a basis change: [spike] is the
      FTRAN-transformed entering column, [row] the leaving row slot.
      @raise Singular on a (numerically) zero pivot. *)
  let push_eta t ~spike ~row =
    let e = eta_of_spike ~spike ~row in
    t.update_nnz <- t.update_nnz + Array.length e.idx;
    push t e

  (* Stability guard for pivot selection: only meaningful for inexact
     fields (rationals always map a nonzero to a nonzero float unless the
     magnitude is truly extreme, in which case any nonzero is exact
     anyway). *)
  let mag (v : F.t) = Float.abs (F.to_float v)

  (** Refactorize from scratch: Gaussian elimination of the basis columns
      in increasing-nnz order, pivot rows chosen Markowitz-style (fewest
      remaining occurrences among the still-unassigned rows, tie-broken on
      magnitude for stability).  [basis] is read as a column multiset and
      {e reassigned}: afterwards [basis.(r)] is the column whose solution
      value FTRAN leaves at slot [r] — callers must recompute x_B and
      reduced costs after every refactorization.
      @raise Singular when the columns do not span (or, for floats, when
      no acceptable pivot survives). *)
  let factorize t (a : F.t Sparse_mat.t) ~(basis : int array) =
    let m = Array.length basis in
    t.n_etas <- 0;
    t.factor_etas <- 0;
    t.factor_nnz <- 0;
    t.update_nnz <- 0;
    if m = 0 then ()
    else begin
      let cols = Array.copy basis in
      (* near-triangular ordering: thin columns first *)
      let order = Array.init m (fun i -> i) in
      Array.sort
        (fun i j -> compare (Sparse_mat.col_nnz a cols.(i)) (Sparse_mat.col_nnz a cols.(j)))
        order;
      (* Markowitz row counts over the basis columns *)
      let rowcount = Array.make m 0 in
      Array.iter
        (fun c -> Sparse_mat.iter_col a c (fun r _ -> rowcount.(r) <- rowcount.(r) + 1))
        cols;
      let assigned = Array.make m false in
      let work = Array.make m F.zero in
      (* The spike's support, tracked explicitly: every per-column step
         below (eta application, pivot scans, eta extraction, reset)
         walks only the rows this column actually filled, so a
         refactorization costs O(fill · log fill), not O(m) per column.
         The reset must cover the whole support, not just the eta's
         entries — with an inexact field, values below the is_zero
         epsilon are excluded from the eta but still sit in the array. *)
      let touched = Array.make m false in
      let support = Array.make m 0 in
      let top = ref 0 in
      (* Each row is pivoted by at most one factor eta, so the etas that
         can act on the spike are exactly those whose pivot row is in
         its (growing) support.  A min-heap of eta indices replays them
         in ascending order — sequential-ftran semantics at O(reachable)
         cost (Gilbert–Peierls style reachability). *)
      let eta_at_row = Array.make m (-1) in
      let heap = Array.make m 0 in
      let heap_n = ref 0 in
      let heap_push k =
        let i = ref !heap_n in
        incr heap_n;
        heap.(!i) <- k;
        let continue = ref true in
        while !continue && !i > 0 do
          let parent = (!i - 1) / 2 in
          if heap.(parent) > heap.(!i) then begin
            let tmp = heap.(parent) in
            heap.(parent) <- heap.(!i);
            heap.(!i) <- tmp;
            i := parent
          end
          else continue := false
        done
      in
      let heap_pop () =
        let top_k = heap.(0) in
        decr heap_n;
        heap.(0) <- heap.(!heap_n);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < !heap_n && heap.(l) < heap.(!smallest) then smallest := l;
          if r < !heap_n && heap.(r) < heap.(!smallest) then smallest := r;
          if !smallest <> !i then begin
            let tmp = heap.(!smallest) in
            heap.(!smallest) <- heap.(!i);
            heap.(!i) <- tmp;
            i := !smallest
          end
          else continue := false
        done;
        top_k
      in
      (* Only etas we have not yet replayed can still act: fill in a row
         whose eta index is behind the replay cursor would also be
         skipped by a sequential ftran. *)
      let cursor = ref (-1) in
      let mark i =
        if touched.(i) then ()
        else begin
          touched.(i) <- true;
          support.(!top) <- i;
          incr top;
          if eta_at_row.(i) > !cursor then heap_push eta_at_row.(i)
        end
      in
      Array.iter
        (fun slot ->
          let col = cols.(slot) in
          cursor := -1;
          Sparse_mat.iter_col a col (fun i v ->
              work.(i) <- v;
              mark i);
          (* Replay reachable etas in ascending index order. *)
          while !heap_n > 0 do
            let k = heap_pop () in
            cursor := k;
            let e = t.etas.(k) in
            let xr = work.(e.er) in
            if not (F.is_zero xr) then begin
              let piv = F.div xr e.ep in
              work.(e.er) <- piv;
              for j = 0 to Array.length e.idx - 1 do
                let i = e.idx.(j) in
                mark i;
                work.(i) <- F.sub work.(i) (F.mul e.vals.(j) piv)
              done
            end
          done;
          (* choose the pivot row among unassigned nonzeros *)
          let maxmag = ref 0.0 in
          for s = 0 to !top - 1 do
            let r = support.(s) in
            if (not assigned.(r)) && not (F.is_zero work.(r)) then begin
              let g = mag work.(r) in
              if g > !maxmag then maxmag := g
            end
          done;
          let threshold = 0.01 *. !maxmag in
          let best = ref (-1) in
          let best_count = ref max_int in
          let best_mag = ref 0.0 in
          for s = 0 to !top - 1 do
            let r = support.(s) in
            if (not assigned.(r)) && not (F.is_zero work.(r)) then begin
              let g = mag work.(r) in
              if g >= threshold then begin
                if
                  rowcount.(r) < !best_count
                  || (rowcount.(r) = !best_count && g > !best_mag)
                then begin
                  best := r;
                  best_count := rowcount.(r);
                  best_mag := g
                end
              end
            end
          done;
          if !best < 0 then raise Singular;
          let r = !best in
          (* Build the eta from the tracked support. *)
          let count = ref 0 in
          for s = 0 to !top - 1 do
            let i = support.(s) in
            if i <> r && not (F.is_zero work.(i)) then incr count
          done;
          let idx = Array.make !count 0 in
          let vals = Array.make !count F.zero in
          let k = ref 0 in
          for s = 0 to !top - 1 do
            let i = support.(s) in
            if i <> r && not (F.is_zero work.(i)) then begin
              idx.(!k) <- i;
              vals.(!k) <- work.(i);
              incr k
            end
          done;
          let e = { er = r; ep = work.(r); idx; vals } in
          t.factor_nnz <- t.factor_nnz + !count;
          push t e;
          eta_at_row.(r) <- t.n_etas - 1;
          assigned.(r) <- true;
          basis.(r) <- col;
          Sparse_mat.iter_col a col (fun i _ -> rowcount.(i) <- rowcount.(i) - 1);
          for s = 0 to !top - 1 do
            let i = support.(s) in
            work.(i) <- F.zero;
            touched.(i) <- false
          done;
          top := 0)
        order;
      t.factor_etas <- t.n_etas
    end

  (** ‖B·x_B − b‖∞ for the basis [basis] of [a] — the drift monitor.
      Exactly zero under {!Field_rat}. *)
  let residual_inf (a : F.t Sparse_mat.t) ~(basis : int array) ~(rhs : F.t array)
      ~(xb : F.t array) : F.t =
    let m = Array.length rhs in
    let s = Array.init m (fun i -> F.neg rhs.(i)) in
    Array.iteri
      (fun r col ->
        if not (F.is_zero xb.(r)) then
          Sparse_mat.iter_col a col (fun i v -> s.(i) <- F.add s.(i) (F.mul v xb.(r))))
      basis;
    Array.fold_left
      (fun acc x ->
        let ax = F.abs x in
        if F.compare ax acc > 0 then ax else acc)
      F.zero s
end
