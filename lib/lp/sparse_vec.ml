(** Immutable sparse vectors and an accumulating row builder.

    The element type is a plain type parameter rather than a functor
    argument so the same structures serve every [Field.S] instantiation
    (and {!Dart_repair} can build rational rows without dragging a functor
    application around).  Operations that need arithmetic take the field
    operations as explicit arguments. *)

type 'a t = {
  idx : int array;  (** coordinate of each stored entry, ascending unique *)
  vals : 'a array;  (** entry values, parallel to [idx] *)
}

let nnz (v : 'a t) = Array.length v.idx

let iter f (v : 'a t) = Array.iteri (fun k i -> f i v.vals.(k)) v.idx

let to_list (v : 'a t) =
  List.init (Array.length v.idx) (fun k -> (v.idx.(k), v.vals.(k)))

(** Dot product against a dense vector. *)
let dot ~zero ~add ~mul ~is_zero (v : 'a t) (dense : 'a array) =
  let acc = ref zero in
  iter (fun i x -> if not (is_zero dense.(i)) then acc := add !acc (mul x dense.(i))) v;
  !acc

(** Accumulating builder: [add] coefficients keyed by coordinate, combining
    duplicates as they arrive, then read the combined row back.  Nothing is
    ever materialized at the dimension of the ambient space — memory is
    O(distinct coordinates touched) — which is what lets {!Dart_repair}'s
    encoder stay O(nnz) on documents with tens of thousands of cells. *)
module Builder = struct
  type 'a b = {
    add : 'a -> 'a -> 'a;
    is_zero : 'a -> bool;
    tbl : (int, 'a ref) Hashtbl.t;
    mutable order : int list;  (* first-touch order, reversed *)
  }

  let create ?(size = 16) ~add ~is_zero () =
    { add; is_zero; tbl = Hashtbl.create size; order = [] }

  let add (b : 'a b) (key : int) (v : 'a) =
    match Hashtbl.find_opt b.tbl key with
    | Some r -> r := b.add !r v
    | None ->
      Hashtbl.add b.tbl key (ref v);
      b.order <- key :: b.order

  (** The combined row as [(value, key)] terms in first-touch order, exact
      zeros dropped.  The [(value, key)] shape matches
      {!Lp_problem.Make.add_constraint} term lists. *)
  let terms (b : 'a b) : ('a * int) list =
    List.fold_left
      (fun acc key ->
        let v = !(Hashtbl.find b.tbl key) in
        if b.is_zero v then acc else (v, key) :: acc)
      [] b.order

  let nnz (b : 'a b) = Hashtbl.length b.tbl

  let clear (b : 'a b) =
    Hashtbl.reset b.tbl;
    b.order <- []

  (** Combined row as a {!t}, sorted by coordinate. *)
  let to_vec (b : 'a b) : 'a t =
    let l =
      List.sort (fun (_, i) (_, j) -> compare i j) (terms b)
    in
    { idx = Array.of_list (List.map snd l);
      vals = Array.of_list (List.map fst l) }
end
