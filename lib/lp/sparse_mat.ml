(** Column-wise (CSC) sparse matrices.

    The revised simplex walks columns — pricing dots a row vector against
    every nonbasic column, FTRAN scatters the entering column — so columns
    are the contiguous axis.  Like {!Sparse_vec} the element type is a type
    parameter; arithmetic needed during assembly is passed in. *)

type 'a t = {
  m : int;               (** rows *)
  n : int;               (** columns *)
  col_ptr : int array;   (** length n+1; column j occupies [col_ptr.(j), col_ptr.(j+1)) *)
  row_idx : int array;   (** row coordinate of each stored entry *)
  vals : 'a array;       (** entry values, parallel to [row_idx] *)
}

let nnz (t : 'a t) = Array.length t.row_idx
let col_nnz (t : 'a t) j = t.col_ptr.(j + 1) - t.col_ptr.(j)

let iter_col (t : 'a t) j f =
  for k = t.col_ptr.(j) to t.col_ptr.(j + 1) - 1 do
    f t.row_idx.(k) t.vals.(k)
  done

(** Scatter column [j] into a dense vector (assumed zeroed at the column's
    support). *)
let scatter_col (t : 'a t) j (dense : 'a array) =
  iter_col t j (fun i v -> dense.(i) <- v)

(** Transpose: the result's columns are the input's rows, so
    [iter_col (transpose t) i] walks row [i] of [t].  Pricing uses this to
    form the pivot row alpha = A^T rho by scanning only the rows where rho
    is nonzero instead of dotting rho against every column.  Counting
    sort, O(nnz + m + n); entries within a result column come out in
    ascending row (= original column) order. *)
let transpose ~(zero : 'a) (t : 'a t) : 'a t =
  let nnz = Array.length t.row_idx in
  let col_ptr = Array.make (t.m + 1) 0 in
  Array.iter (fun i -> col_ptr.(i + 1) <- col_ptr.(i + 1) + 1) t.row_idx;
  for i = 0 to t.m - 1 do
    col_ptr.(i + 1) <- col_ptr.(i + 1) + col_ptr.(i)
  done;
  let row_idx = Array.make nnz 0 in
  let vals = Array.make nnz zero in
  let cursor = Array.copy col_ptr in
  for j = 0 to t.n - 1 do
    for k = t.col_ptr.(j) to t.col_ptr.(j + 1) - 1 do
      let i = t.row_idx.(k) in
      let dst = cursor.(i) in
      cursor.(i) <- dst + 1;
      row_idx.(dst) <- j;
      vals.(dst) <- t.vals.(k)
    done
  done;
  { m = t.n; n = t.m; col_ptr; row_idx; vals }

(** Assemble from row-major term lists ([(col, coef)] with duplicates
    allowed; duplicates are combined with [add], exact zeros dropped).
    O(nnz + m + n) time and memory — nothing row-length-dense is ever
    allocated. *)
let of_rows ~(zero : 'a) ~is_zero ~add ~m ~n (rows : (int * 'a) list array) : 'a t =
  if Array.length rows <> m then invalid_arg "Sparse_mat.of_rows: row count";
  (* 1. combine duplicates per row with a stamped accumulator *)
  let stamp = Array.make n (-1) in
  let acc = Array.make n zero in
  let combined =
    Array.mapi
      (fun i row ->
        let touched = ref [] in
        List.iter
          (fun (j, v) ->
            if j < 0 || j >= n then invalid_arg "Sparse_mat.of_rows: column";
            if stamp.(j) <> i then begin
              stamp.(j) <- i;
              acc.(j) <- v;
              touched := j :: !touched
            end
            else acc.(j) <- add acc.(j) v)
          row;
        List.filter_map
          (fun j -> if is_zero acc.(j) then None else Some (j, acc.(j)))
          (List.rev !touched))
      rows
  in
  (* 2. column counts -> offsets *)
  let col_ptr = Array.make (n + 1) 0 in
  Array.iter
    (List.iter (fun (j, _) -> col_ptr.(j + 1) <- col_ptr.(j + 1) + 1))
    combined;
  for j = 0 to n - 1 do
    col_ptr.(j + 1) <- col_ptr.(j + 1) + col_ptr.(j)
  done;
  (* 3. fill (row order within a column is ascending by construction) *)
  let total = col_ptr.(n) in
  let row_idx = Array.make total 0 in
  let vals = Array.make total zero in
  let cursor = Array.copy col_ptr in
  Array.iteri
    (fun i row ->
      List.iter
        (fun (j, v) ->
          let k = cursor.(j) in
          cursor.(j) <- k + 1;
          row_idx.(k) <- i;
          vals.(k) <- v)
        row)
    combined;
  { m; n; col_ptr; row_idx; vals }
