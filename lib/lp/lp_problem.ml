(** Mutable LP/MILP problem builder, parameterized by the coefficient field.

    A problem is a set of variables (each with optional bounds and an
    integrality flag), a list of linear constraints and a linear objective.
    {!Simplex} solves the continuous relaxation; {!Milp} adds branch & bound
    over the variables marked integral. *)

type relop = Le | Ge | Eq

let string_of_relop = function Le -> "<=" | Ge -> ">=" | Eq -> "="

module Make (F : Field.S) = struct
  type var = int

  type bound = F.t option
  (** [None] means unbounded on that side. *)

  type constr = {
    terms : (F.t * var) list; (* coefficient * variable, duplicates allowed *)
    op : relop;
    rhs : F.t;
    label : string; (* provenance, e.g. the ground aggregate constraint *)
  }

  type t = {
    mutable nvars : int;
    mutable names : string list;   (* reversed *)
    mutable lowers : bound list;   (* reversed *)
    mutable uppers : bound list;   (* reversed *)
    mutable integers : bool list;  (* reversed *)
    mutable constrs : constr list; (* reversed *)
    mutable objective : (F.t * var) list;
    mutable minimize : bool;
  }

  let create () =
    { nvars = 0; names = []; lowers = []; uppers = []; integers = [];
      constrs = []; objective = []; minimize = true }

  let add_var ?(name = "") ?lower ?upper ?(integer = false) p =
    let v = p.nvars in
    let name = if name = "" then Printf.sprintf "x%d" v else name in
    p.nvars <- v + 1;
    p.names <- name :: p.names;
    p.lowers <- lower :: p.lowers;
    p.uppers <- upper :: p.uppers;
    p.integers <- integer :: p.integers;
    v

  let add_constraint ?(label = "") p terms op rhs =
    List.iter
      (fun (_, v) ->
        if v < 0 || v >= p.nvars then invalid_arg "Lp_problem.add_constraint: bad var")
      terms;
    p.constrs <- { terms; op; rhs; label } :: p.constrs

  (** Remove the most recently added constraint.  With {!add_constraint}
      this gives a push/pop discipline: branch & bound pushes a branching
      row before recursing into a child and pops it on the way out, so one
      mutable problem serves the whole search tree. *)
  let pop_constraint p =
    match p.constrs with
    | [] -> invalid_arg "Lp_problem.pop_constraint: no constraints"
    | _ :: rest -> p.constrs <- rest

  (** An independent copy: mutating the copy (adding variables or
      constraints, popping rows) never affects the original.  O(1) — the
      record fields are immutable lists, so they are shared. *)
  let copy p =
    { nvars = p.nvars; names = p.names; lowers = p.lowers; uppers = p.uppers;
      integers = p.integers; constrs = p.constrs; objective = p.objective;
      minimize = p.minimize }

  let set_objective ?(minimize = true) p terms =
    List.iter
      (fun (_, v) ->
        if v < 0 || v >= p.nvars then invalid_arg "Lp_problem.set_objective: bad var")
      terms;
    p.objective <- terms;
    p.minimize <- minimize

  let num_vars p = p.nvars
  let num_constraints p = List.length p.constrs

  (* Frozen array views, oriented in declaration order. *)
  let var_names p = Array.of_list (List.rev p.names)
  let var_lowers p = Array.of_list (List.rev p.lowers)
  let var_uppers p = Array.of_list (List.rev p.uppers)
  let var_integers p = Array.of_list (List.rev p.integers)
  let constraints p = Array.of_list (List.rev p.constrs)
  let objective p = p.objective
  let minimize p = p.minimize

  (** Count of variables flagged integral. *)
  let num_integer_vars p = List.fold_left (fun n b -> if b then n + 1 else n) 0 p.integers

  (** Evaluate a term list under an assignment. *)
  let eval_terms terms (assignment : F.t array) =
    List.fold_left (fun acc (c, v) -> F.add acc (F.mul c assignment.(v))) F.zero terms

  (** Check that an assignment satisfies every constraint and bound. *)
  let feasible p (assignment : F.t array) =
    let lowers = var_lowers p and uppers = var_uppers p in
    let bound_ok v =
      (match lowers.(v) with None -> true | Some l -> F.compare assignment.(v) l >= 0)
      && (match uppers.(v) with None -> true | Some h -> F.compare assignment.(v) h <= 0)
    in
    let constr_ok c =
      let lhs = eval_terms c.terms assignment in
      match c.op with
      | Le -> F.compare lhs c.rhs <= 0
      | Ge -> F.compare lhs c.rhs >= 0
      | Eq -> F.compare lhs c.rhs = 0
    in
    let rec vars_ok v = v >= p.nvars || (bound_ok v && vars_ok (v + 1)) in
    vars_ok 0 && List.for_all constr_ok p.constrs

  let pp fmt p =
    let names = var_names p in
    let pp_terms fmt terms =
      let first = ref true in
      List.iter
        (fun (c, v) ->
          if !first then first := false else Format.fprintf fmt " + ";
          Format.fprintf fmt "%s*%s" (F.to_string c) names.(v))
        terms
    in
    Format.fprintf fmt "%s %a@."
      (if p.minimize then "min" else "max")
      pp_terms p.objective;
    Array.iter
      (fun c ->
        Format.fprintf fmt "  %a %s %s%s@." pp_terms c.terms (string_of_relop c.op)
          (F.to_string c.rhs)
          (if c.label = "" then "" else "  ; " ^ c.label))
      (constraints p)
end
