(** Simplex over an arbitrary ordered field, with warm restarts and two
    interchangeable cores.

    The {b dense} core is the classic two-phase full-tableau method with
    Bland's anti-cycling rule: every pivot touches every column, which is
    simple, exact and fine for small instances.

    The {b sparse} core (the default) is a revised simplex: constraint
    columns live in a {!Sparse_mat} (CSC), the basis is factorized as LU in
    product form by {!Basis_lu} (an eta file with Markowitz-style pivot
    selection, refactorized every K update etas or when the residual
    ‖B·x_B − b‖ drifts), pricing is devex over partial-pricing column
    blocks with an automatic fallback to Bland's rule once a stall/cycling
    heuristic trips (so anti-cycling stays guaranteed), and each iteration
    costs O(nnz) instead of O(m·n).

    Both cores sit behind the same field-generic interface: pluggable
    float/rational field, cooperative cancellation polling, snapshot
    warm-starts with a bounded dual-simplex repair phase for appended
    [<=]/[>=] rows, and per-phase wall-clock attribution.  A snapshot
    carries the core that produced it, so a warm start always replays on
    the matching machinery; any structural mismatch silently falls back to
    a cold solve — a stale snapshot can cost time but never correctness.
    The sparse core additionally falls back to the dense core when the
    factorization signals numerical trouble (singular or irreducible
    residual under an inexact field), and [Auto] picks dense outright for
    tiny instances where the revised machinery is pure overhead. *)

module Obs = Dart_obs.Obs
module Cancel = Dart_resilience.Cancel

(** Which simplex engine to run.  [Auto] resolves per problem: dense below
    {!tuning}[.auto_dense_rows] constraint rows, sparse above. *)
type core = Dense | Sparse | Auto

let core_to_string = function
  | Dense -> "dense"
  | Sparse -> "sparse"
  | Auto -> "auto"

let core_of_string = function
  | "dense" -> Some Dense
  | "sparse" -> Some Sparse
  | "auto" -> Some Auto
  | _ -> None

let default_core_ref = ref Sparse
let default_core () = !default_core_ref
let set_default_core c = default_core_ref := c

(** Sparse-core policy knobs, shared across all field instantiations.
    Mutable so tests and ablations can pin behaviours (e.g. a negative
    [drift_tol] forces a refactorization at every drift check; a zero
    [stall_threshold] trips the Bland fallback on the first degenerate
    pivot). *)
type tuning = {
  mutable refactor_every : int;
      (** refactorize after this many product-form update etas *)
  mutable drift_check_every : int;
      (** iterations between ‖B·x_B − b‖ residual checks *)
  mutable drift_tol : float;
      (** relative residual above which a drift check refactorizes *)
  mutable stall_threshold : int;
      (** consecutive degenerate pivots before devex falls back to Bland *)
  mutable partial_block : int;
      (** column-block width for partial pricing *)
  mutable auto_dense_rows : int;
      (** [Auto] uses the dense core at or below this many constraint rows *)
}

let tuning =
  { refactor_every = 64; drift_check_every = 16; drift_tol = 1e-6;
    stall_threshold = 20; partial_block = 128; auto_dense_rows = 16 }

(* Residual (relative) beyond which a *fresh* factorization is declared
   numerically hopeless and the solve falls back to the dense core. *)
let trouble_tol = 1e-3

module Make (F : Field.S) = struct
  module P = Lp_problem.Make (F)
  module Lu = Basis_lu.Make (F)

  type result =
    | Optimal of { objective : F.t; assignment : F.t array }
    | Infeasible
    | Unbounded

  (** Effort counters for one [solve] call (satellite of the dart_obs PR:
      solver work must be measurable, not silent).  [phases] attributes the
      wall-clock time of the same call across the outer phases ["phase1"],
      ["phase2"], ["dual"] and ["snapshot"], and — on the sparse core —
      the inner kernels ["factor"], ["ftran"], ["btran"] and ["price"], so
      a profile can say not just how many pivots were spent but {e where}
      the microseconds went. *)
  type stats = {
    mutable pivots : int;         (** total pivot operations, all phases *)
    mutable phase1_pivots : int;  (** pivots spent reaching feasibility *)
    mutable phase2_pivots : int;  (** pivots spent optimizing *)
    mutable dual_pivots : int;    (** pivots spent repairing primal
                                      feasibility after a warm restart *)
    mutable refactorizations : int; (** sparse-core basis refactorizations *)
    mutable bland_fallbacks : int;  (** devex→Bland anti-cycling trips *)
    mutable eta_peak : int;         (** peak eta-file length (sparse) *)
    mutable factor_nnz : int;       (** off-pivot nnz of the last
                                        refactorization (fill-in gauge) *)
    phases : Obs.Phases.t;        (** per-phase wall-clock attribution *)
  }

  let fresh_stats () =
    { pivots = 0; phase1_pivots = 0; phase2_pivots = 0; dual_pivots = 0;
      refactorizations = 0; bland_fallbacks = 0; eta_peak = 0; factor_nnz = 0;
      phases = Obs.Phases.create () }

  let phase_phase1 = "phase1"
  let phase_phase2 = "phase2"
  let phase_dual = "dual"
  let phase_snapshot = "snapshot"
  let phase_factor = "factor"
  let phase_ftran = "ftran"
  let phase_btran = "btran"
  let phase_price = "price"

  let m_solves = Obs.Metrics.counter "lp.simplex.solves"
  let m_pivots = Obs.Metrics.counter "lp.simplex.pivots"
  let m_warm_starts = Obs.Metrics.counter "lp.simplex.warm_starts"
  let m_dual_pivots = Obs.Metrics.counter "lp.simplex.dual_pivots"
  let m_refactorizations = Obs.Metrics.counter "lp.simplex.refactorizations"
  let m_bland_fallbacks = Obs.Metrics.counter "lp.simplex.bland_fallbacks"
  let m_dense_fallbacks = Obs.Metrics.counter "lp.simplex.dense_fallbacks"

  (* Phase-time histograms (milliseconds, one observation per solve that
     ran the phase).  These flow through [Obs.Metrics.snapshot] and the
     Prometheus exposition unchanged, so the server's existing stats
     endpoints pick them up without new plumbing. *)
  let h_phase1_ms = Obs.Metrics.histogram "lp.simplex.phase1_ms"
  let h_phase2_ms = Obs.Metrics.histogram "lp.simplex.phase2_ms"
  let h_dual_ms = Obs.Metrics.histogram "lp.simplex.dual_ms"
  let h_snapshot_ms = Obs.Metrics.histogram "lp.simplex.snapshot_ms"
  let h_factor_ms = Obs.Metrics.histogram "lp.simplex.factor_ms"
  let h_ftran_ms = Obs.Metrics.histogram "lp.simplex.ftran_ms"
  let h_btran_ms = Obs.Metrics.histogram "lp.simplex.btran_ms"
  let h_price_ms = Obs.Metrics.histogram "lp.simplex.price_ms"
  let h_eta_len = Obs.Metrics.histogram "lp.simplex.eta_len"

  let observe_phase_histograms (st : stats) =
    List.iter
      (fun (name, h) ->
        if Obs.Phases.count st.phases name > 0 then
          Obs.Metrics.observe h (Obs.Phases.total_us st.phases name /. 1000.0))
      [ (phase_phase1, h_phase1_ms); (phase_phase2, h_phase2_ms);
        (phase_dual, h_dual_ms); (phase_snapshot, h_snapshot_ms);
        (phase_factor, h_factor_ms); (phase_ftran, h_ftran_ms);
        (phase_btran, h_btran_ms); (phase_price, h_price_ms) ];
    if st.eta_peak > 0 then Obs.Metrics.observe h_eta_len (float_of_int st.eta_peak)

  (* How an original variable is represented over the non-negative standard
     variables. *)
  type encoding =
    | Shifted of int * F.t        (* x = u + lo *)
    | Reflected of int * F.t      (* x = hi - u *)
    | Split of int * int          (* x = u_pos - u_neg *)

  type tableau = {
    mutable rows : F.t array array; (* m rows, each of length ncols + 1 (rhs last) *)
    mutable basis : int array;      (* basic variable of each row *)
    obj : F.t array;                (* reduced-cost row, length ncols + 1 *)
    ncols : int;
    is_artificial : bool array;     (* per-column artificial flag; artificials
                                       never (re-)enter the basis in phase 2
                                       or in the dual phase *)
  }

  (** Dense final state: the full tableau, ready to be widened by appended
      rows. *)
  type dense_state = {
    d_rows : F.t array array;
    d_obj : F.t array;
    d_basis : int array;
    d_is_artificial : bool array;
    d_ncols : int;
  }

  (** Sparse final state: the basis header plus the captured basic values
      and reduced costs (enough to check the warm-start invariants without
      refactorizing; the warm path refactorizes and recomputes both
      exactly anyway). *)
  type sparse_state = {
    z_basis : int array;          (* row slot -> basic column *)
    z_nstd : int;
    z_ncols : int;                (* full extended width (= |z_dj|) *)
    z_base : int;                 (* problem rows covered by the spec prefix *)
    z_ncols0 : int;               (* width before appended-row slacks *)
    z_is_artificial : bool array;
    z_xb : F.t array;             (* basic values by row slot *)
    z_dj : F.t array;             (* reduced costs at capture *)
  }

  type basis_state = Dense_basis of dense_state | Sparse_basis of sparse_state

  (** The final state of an optimal solve, sufficient to warm-start a
      re-solve of the same problem extended by appended inequality rows.
      Everything needed to validate compatibility is carried along
      ([s_lowers]/[s_uppers]/[s_objective]/[s_constrs]) so a mismatched
      snapshot is detected, never trusted. *)
  type snapshot = {
    s_nvars : int;
    s_lowers : F.t option array;
    s_uppers : F.t option array;
    s_minimize : bool;
    s_objective : (F.t * int) list;
    s_constrs : P.constr array;       (* problem rows covered by the basis *)
    s_encodings : encoding array;
    s_state : basis_state;
  }

  (** Which core produced a snapshot (a warm start replays on the same
      core). *)
  let snapshot_core (s : snapshot) =
    match s.s_state with Dense_basis _ -> Dense | Sparse_basis _ -> Sparse

  let snapshot_rows (s : snapshot) =
    match s.s_state with
    | Dense_basis d -> Array.length d.d_rows
    | Sparse_basis z -> Array.length z.z_basis

  (* ------------------------------------------------------------------ *)
  (* Dense tableau machinery                                             *)
  (* ------------------------------------------------------------------ *)

  let pivot t ~row ~col =
    let r = t.rows.(row) in
    let piv = r.(col) in
    let n = t.ncols in
    for j = 0 to n do
      if not (F.is_zero r.(j)) then r.(j) <- F.div r.(j) piv
    done;
    r.(col) <- F.one;
    let eliminate (other : F.t array) =
      let factor = other.(col) in
      if not (F.is_zero factor) then begin
        for j = 0 to n do
          if not (F.is_zero r.(j)) then other.(j) <- F.sub other.(j) (F.mul factor r.(j))
        done;
        other.(col) <- F.zero
      end
    in
    Array.iteri (fun i other -> if i <> row then eliminate other) t.rows;
    eliminate t.obj;
    t.basis.(row) <- col

  (* Bland's rule: entering = lowest-index column with negative reduced cost
     (artificials are never allowed to re-enter once phase 1 is done). *)
  let entering_column t ~allow_artificial =
    let rec go j =
      if j >= t.ncols then None
      else if (allow_artificial || not t.is_artificial.(j))
              && F.compare t.obj.(j) F.zero < 0 then Some j
      else go (j + 1)
    in
    go 0

  let leaving_row t ~col =
    let m = Array.length t.rows in
    let best = ref None in
    for i = 0 to m - 1 do
      let a = t.rows.(i).(col) in
      if F.compare a F.zero > 0 then begin
        let ratio = F.div t.rows.(i).(t.ncols) a in
        match !best with
        | None -> best := Some (i, ratio)
        | Some (bi, bratio) ->
          let c = F.compare ratio bratio in
          (* Tie-break on the basic variable index (Bland). *)
          if c < 0 || (c = 0 && t.basis.(i) < t.basis.(bi)) then best := Some (i, ratio)
      end
    done;
    Option.map fst !best

  type iterate_outcome = Finished | Unbounded_direction

  (* Cancellation is polled every 64 pivots: cheap enough to be free on
     the small LPs, frequent enough that a deadline aborts a pathological
     tableau within milliseconds. *)
  (* Poll every 16 pivots: at large sizes one dense pivot is O(m*n) work,
     so a coarser mask lets a cancelled solve overshoot its deadline by
     whole seconds; the check itself is a few loads. *)
  let cancel_poll_mask = 15

  let rec iterate t ~allow_artificial ~pivots ~cancel =
    match entering_column t ~allow_artificial with
    | None -> Finished
    | Some col ->
      (match leaving_row t ~col with
       | None -> Unbounded_direction
       | Some row ->
         pivot t ~row ~col;
         incr pivots;
         if !pivots land cancel_poll_mask = 0 then Cancel.check cancel;
         iterate t ~allow_artificial ~pivots ~cancel)

  (* Dual simplex: starting from a dual-feasible tableau (all non-artificial
     reduced costs >= 0) with some negative rhs entries, restore primal
     feasibility while keeping dual feasibility.  Anti-cycling by the dual
     Bland rule: leaving row = smallest basic-variable index among
     infeasible rows; entering column = smallest index among the minimum
     ratio obj_j / -a_rj over a_rj < 0.  [budget] bounds the pivot count
     (the caller falls back to a cold solve on a stall). *)
  type dual_outcome = Primal_feasible | Dual_infeasible_row | Stalled

  let dual_iterate t ~pivots ~budget ~cancel =
    let m = Array.length t.rows in
    let rec go () =
      if !pivots >= budget then Stalled
      else begin
        let leave = ref (-1) in
        for i = 0 to m - 1 do
          if F.compare t.rows.(i).(t.ncols) F.zero < 0
             && (!leave < 0 || t.basis.(i) < t.basis.(!leave))
          then leave := i
        done;
        if !leave < 0 then Primal_feasible
        else begin
          let r = t.rows.(!leave) in
          let best = ref (-1) in
          let best_ratio = ref F.zero in
          for j = 0 to t.ncols - 1 do
            if (not t.is_artificial.(j)) && F.compare r.(j) F.zero < 0 then begin
              let ratio = F.div t.obj.(j) (F.neg r.(j)) in
              if !best < 0 || F.compare ratio !best_ratio < 0 then begin
                best := j;
                best_ratio := ratio
              end
            end
          done;
          if !best < 0 then
            (* rhs < 0 with every real coefficient >= 0: no non-negative
               assignment can satisfy the row (artificials are 0 in any
               solution of the original problem), so it is a certificate of
               primal infeasibility. *)
            Dual_infeasible_row
          else begin
            pivot t ~row:!leave ~col:!best;
            incr pivots;
            if !pivots land cancel_poll_mask = 0 then Cancel.check cancel;
            go ()
          end
        end
      end
    in
    go ()

  (* Install a cost vector into the reduced-cost row and re-eliminate the
     basic columns so the row is expressed over nonbasic variables only. *)
  let install_costs t (costs : F.t array) =
    let n = t.ncols in
    for j = 0 to n do t.obj.(j) <- F.zero done;
    Array.iteri (fun j c -> t.obj.(j) <- c) costs;
    Array.iteri
      (fun i b ->
        let factor = t.obj.(b) in
        if not (F.is_zero factor) then begin
          let r = t.rows.(i) in
          for j = 0 to n do
            if not (F.is_zero r.(j)) then t.obj.(j) <- F.sub t.obj.(j) (F.mul factor r.(j))
          done;
          t.obj.(b) <- F.zero
        end)
      t.basis

  (* Current objective value: the rhs cell of the reduced-cost row holds -z. *)
  let objective_value t = F.neg t.obj.(t.ncols)

  (* Substitute the variable encodings into a term list.
     Returns (std terms, rhs adjustment to subtract). *)
  let encode_terms (encodings : encoding array) terms =
    let adjust = ref F.zero in
    let out = ref [] in
    List.iter
      (fun (c, v) ->
        match encodings.(v) with
        | Shifted (u, lo) ->
          out := (c, u) :: !out;
          adjust := F.add !adjust (F.mul c lo)
        | Reflected (u, hi) ->
          out := (F.neg c, u) :: !out;
          adjust := F.add !adjust (F.mul c hi)
        | Split (up, un) -> out := (c, up) :: (F.neg c, un) :: !out)
      terms;
    (!out, !adjust)

  (* Decode a standard-variable vector back to the original variables and
     recompute the true objective (robust against accumulated constants). *)
  let decode_std (p : P.t) ~(encodings : encoding array) (std : F.t array) =
    let assignment =
      Array.init (P.num_vars p) (fun j ->
          match encodings.(j) with
          | Shifted (u, lo) -> F.add std.(u) lo
          | Reflected (u, hi) -> F.sub hi std.(u)
          | Split (up, un) -> F.sub std.(up) std.(un))
    in
    let objective = P.eval_terms (P.objective p) assignment in
    Optimal { objective; assignment }

  (* Read the original-variable solution off a primal-feasible tableau. *)
  let read_solution (p : P.t) ~(encodings : encoding array) t =
    let std = Array.make t.ncols F.zero in
    Array.iteri (fun i b -> std.(b) <- t.rows.(i).(t.ncols)) t.basis;
    decode_std p ~encodings std

  let shared_snapshot_fields (p : P.t) ~(encodings : encoding array) state =
    { s_nvars = P.num_vars p;
      s_lowers = P.var_lowers p;
      s_uppers = P.var_uppers p;
      s_minimize = P.minimize p;
      s_objective = P.objective p;
      s_constrs = P.constraints p;
      s_encodings = Array.copy encodings;
      s_state = state }

  let capture (p : P.t) ~(encodings : encoding array) t : snapshot =
    shared_snapshot_fields p ~encodings
      (Dense_basis
         { d_rows = Array.map Array.copy t.rows;
           d_obj = Array.copy t.obj;
           d_basis = Array.copy t.basis;
           d_is_artificial = Array.copy t.is_artificial;
           d_ncols = t.ncols })

  (** Does the snapshot's basis satisfy the warm-start invariants?  Primal:
      every basic value is non-negative.  Dual: every non-artificial
      reduced cost is non-negative.  Both hold after any optimal solve; the
      warm path relies on the dual half.  Exposed for the property tests
      that pin the invariants. *)
  let snapshot_primal_feasible (s : snapshot) =
    match s.s_state with
    | Dense_basis d ->
      Array.for_all (fun r -> F.compare r.(d.d_ncols) F.zero >= 0) d.d_rows
    | Sparse_basis z ->
      Array.for_all (fun x -> F.compare x F.zero >= 0) z.z_xb

  let snapshot_dual_feasible (s : snapshot) =
    let ok = ref true in
    (match s.s_state with
     | Dense_basis d ->
       for j = 0 to d.d_ncols - 1 do
         if (not d.d_is_artificial.(j)) && F.compare d.d_obj.(j) F.zero < 0 then
           ok := false
       done
     | Sparse_basis z ->
       for j = 0 to z.z_ncols - 1 do
         if (not z.z_is_artificial.(j)) && F.compare z.z_dj.(j) F.zero < 0 then
           ok := false
       done);
    !ok

  (** Number of appended rows a problem adds on top of a snapshot (only
      meaningful when {!compatible}). *)
  let snapshot_extra_rows (s : snapshot) (p : P.t) =
    P.num_constraints p - Array.length s.s_constrs

  (* ------------------------------------------------------------------ *)
  (* Snapshot compatibility                                              *)
  (* ------------------------------------------------------------------ *)

  let bound_equal a b =
    match a, b with
    | None, None -> true
    | Some x, Some y -> F.equal x y
    | _ -> false

  let rec terms_equal a b =
    match a, b with
    | [], [] -> true
    | (c1, v1) :: ra, (c2, v2) :: rb ->
      v1 = v2 && F.equal c1 c2 && terms_equal ra rb
    | _ -> false

  let constr_equal (c1 : P.constr) (c2 : P.constr) =
    c1 == c2
    || (c1.op = c2.op && F.equal c1.rhs c2.rhs && terms_equal c1.terms c2.terms)

  (** Is [p] the snapshot's problem plus appended [<=]/[>=] rows?  Checks
      variables, bounds, objective sense and terms, that the snapshot's
      rows are an unchanged prefix of [p]'s rows, and that every extra row
      is an inequality (equality rows have no slack to make basic).  Any
      mismatch means the basis cannot be reused. *)
  let compatible (s : snapshot) (p : P.t) =
    P.num_vars p = s.s_nvars
    && P.minimize p = s.s_minimize
    && terms_equal (P.objective p) s.s_objective
    &&
    let lowers = P.var_lowers p and uppers = P.var_uppers p in
    let rec bounds_ok j =
      j >= s.s_nvars
      || (bound_equal lowers.(j) s.s_lowers.(j)
          && bound_equal uppers.(j) s.s_uppers.(j)
          && bounds_ok (j + 1))
    in
    bounds_ok 0
    &&
    let constrs = P.constraints p in
    let base = Array.length s.s_constrs in
    Array.length constrs >= base
    &&
    let rec prefix_ok i =
      i >= base || (constr_equal constrs.(i) s.s_constrs.(i) && prefix_ok (i + 1))
    in
    prefix_ok 0
    &&
    let rec extras_ok i =
      i >= Array.length constrs
      || (constrs.(i).op <> Lp_problem.Eq && extras_ok (i + 1))
    in
    extras_ok base

  (* ------------------------------------------------------------------ *)
  (* Shared standard-form front end                                      *)
  (* ------------------------------------------------------------------ *)

  (** Standard form shared by both cores: variable encodings over
      non-negative standard variables, and rows as sparse term lists
      (bound-cap rows first, then constraint rows in declaration order, so
      the column layout of a prefix problem is a prefix of any extended
      problem's layout — warm starts append columns, never reshuffle
      them).  Nothing row-length-dense is allocated here; the dense core
      densifies at solve time, the sparse core assembles a CSC matrix. *)
  type spec = {
    c_encodings : encoding array;
    c_rows : ((F.t * int) list * F.t) list; (* (terms over std vars incl. slack, rhs) *)
    c_slack_set : bool array;               (* per std column: is a slack *)
    c_nstd : int;
  }

  let build_spec ?limit (p : P.t) ~lowers ~uppers : spec =
    let nvars = P.num_vars p in
    let next = ref 0 in
    let fresh () = let v = !next in incr next; v in
    let extra_rows = ref [] in (* upper-bound rows u <= hi - lo *)
    let encodings =
      Array.init nvars (fun j ->
          match lowers.(j), uppers.(j) with
          | Some lo, Some hi ->
            let u = fresh () in
            extra_rows := (u, F.sub hi lo) :: !extra_rows;
            Shifted (u, lo)
          | Some lo, None -> Shifted (fresh (), lo)
          | None, Some hi -> Reflected (fresh (), hi)
          | None, None ->
            let up = fresh () in
            let un = fresh () in
            Split (up, un))
    in
    let rows_spec = ref [] in
    let slack_cols = ref [] in
    let add_row terms op rhs =
      match op with
      | Lp_problem.Eq -> rows_spec := (terms, rhs) :: !rows_spec
      | Lp_problem.Le ->
        let s = fresh () in
        slack_cols := s :: !slack_cols;
        rows_spec := ((F.one, s) :: terms, rhs) :: !rows_spec
      | Lp_problem.Ge ->
        let s = fresh () in
        slack_cols := s :: !slack_cols;
        rows_spec := ((F.neg F.one, s) :: terms, rhs) :: !rows_spec
    in
    List.iter
      (fun (u, cap) -> add_row [ (F.one, u) ] Lp_problem.Le cap)
      (List.rev !extra_rows);
    let constrs = P.constraints p in
    let nconstr =
      match limit with Some k -> k | None -> Array.length constrs
    in
    for i = 0 to nconstr - 1 do
      let c = constrs.(i) in
      let terms, adjust = encode_terms encodings c.terms in
      add_row terms c.op (F.sub c.rhs adjust)
    done;
    let nstd = !next in
    let slack_set = Array.make nstd false in
    List.iter (fun s -> slack_set.(s) <- true) !slack_cols;
    { c_encodings = encodings; c_rows = List.rev !rows_spec;
      c_slack_set = slack_set; c_nstd = nstd }

  (* Phase-2 cost vector over the standard columns (length [ncols]). *)
  let phase2_costs (p : P.t) ~(encodings : encoding array) ~ncols =
    let costs = Array.make ncols F.zero in
    let sense = if P.minimize p then F.one else F.neg F.one in
    List.iter
      (fun (c, v) ->
        let c = F.mul sense c in
        match encodings.(v) with
        | Shifted (u, _) -> costs.(u) <- F.add costs.(u) c
        | Reflected (u, _) -> costs.(u) <- F.sub costs.(u) c
        | Split (up, un) ->
          costs.(up) <- F.add costs.(up) c;
          costs.(un) <- F.sub costs.(un) c)
      (P.objective p);
    costs

  (* ------------------------------------------------------------------ *)
  (* Dense cold solve                                                    *)
  (* ------------------------------------------------------------------ *)

  let dense_solve_with_spec (p : P.t) (spec : spec) ~st ~cancel ~want_capture
      : result * snapshot option =
    let encodings = spec.c_encodings in
    let nstd = spec.c_nstd in
    let m = List.length spec.c_rows in
    (* --- densify, normalize rhs signs, pick basic columns, artificials - *)
    let dense = Array.make_matrix m (nstd + 1) F.zero in
    List.iteri
      (fun i (terms, rhs) ->
        List.iter (fun (c, v) -> dense.(i).(v) <- F.add dense.(i).(v) c) terms;
        dense.(i).(nstd) <- rhs)
      spec.c_rows;
    Array.iter
      (fun r ->
        if F.compare r.(nstd) F.zero < 0 then
          Array.iteri (fun j x -> r.(j) <- F.neg x) r)
      dense;
    (* A row can use its slack as the initial basic variable iff the slack
       coefficient survived as +1 after sign normalization. *)
    let basis0 = Array.make m (-1) in
    let needs_artificial = ref [] in
    Array.iteri
      (fun i r ->
        let found = ref (-1) in
        for j = 0 to nstd - 1 do
          if !found < 0 && spec.c_slack_set.(j) && F.equal r.(j) F.one then
            (* Must be the only row touching this slack (always true: each
               slack occurs in exactly one row). *)
            found := j
        done;
        if !found >= 0 then basis0.(i) <- !found
        else needs_artificial := i :: !needs_artificial)
      dense;
    let nart = List.length !needs_artificial in
    let ncols = nstd + nart in
    let rows =
      Array.mapi
        (fun _ r ->
          let nr = Array.make (ncols + 1) F.zero in
          Array.blit r 0 nr 0 nstd;
          nr.(ncols) <- r.(nstd);
          nr)
        dense
    in
    List.iteri
      (fun k i ->
        let col = nstd + k in
        rows.(i).(col) <- F.one;
        basis0.(i) <- col)
      (List.rev !needs_artificial);
    let is_artificial = Array.init ncols (fun j -> j >= nstd) in
    let t =
      { rows; basis = basis0; obj = Array.make (ncols + 1) F.zero; ncols;
        is_artificial }
    in
    (* --- phase 1 -------------------------------------------------------- *)
    let phase1_needed = nart > 0 in
    let feasible =
      if not phase1_needed then true
      else
        Obs.Phases.time st.phases phase_phase1 (fun () ->
            let costs = Array.make (ncols + 1) F.zero in
            for j = nstd to ncols - 1 do costs.(j) <- F.one done;
            install_costs t costs;
            let p1 = ref 0 in
            (match iterate t ~allow_artificial:true ~pivots:p1 ~cancel with
             | Unbounded_direction ->
               (* Phase-1 objective is bounded below by 0; cannot happen. *)
               assert false
             | Finished -> ());
            st.phase1_pivots <- st.phase1_pivots + !p1;
            F.is_zero (objective_value t))
    in
    if not feasible then (Infeasible, None)
    else begin
      (* Drive surviving artificials out of the basis (they sit at 0).
         Still phase-1 work for attribution purposes. *)
      if phase1_needed then
        Obs.Phases.time st.phases phase_phase1 (fun () ->
            Array.iteri
              (fun i b ->
                if t.is_artificial.(b) then begin
                  let r = t.rows.(i) in
                  let col = ref (-1) in
                  for j = 0 to nstd - 1 do
                    if !col < 0 && not (F.is_zero r.(j)) then col := j
                  done;
                  if !col >= 0 then begin
                    pivot t ~row:i ~col:!col;
                    st.phase1_pivots <- st.phase1_pivots + 1
                  end
                  (* else: redundant 0 = 0 row; the artificial stays basic
                     at 0 and can never become positive: its row has no
                     nonzero real coefficient, so pivots on real columns
                     leave it untouched. *)
                end)
              (Array.copy t.basis));
      (* --- phase 2 ------------------------------------------------------ *)
      let outcome =
        Obs.Phases.time st.phases phase_phase2 (fun () ->
            let costs = Array.make (ncols + 1) F.zero in
            Array.blit (phase2_costs p ~encodings ~ncols) 0 costs 0 ncols;
            install_costs t costs;
            let p2 = ref 0 in
            let outcome = iterate t ~allow_artificial:false ~pivots:p2 ~cancel in
            st.phase2_pivots <- st.phase2_pivots + !p2;
            outcome)
      in
      match outcome with
      | Unbounded_direction -> (Unbounded, None)
      | Finished ->
        let result = read_solution p ~encodings t in
        let snap =
          if want_capture then
            Some
              (Obs.Phases.time st.phases phase_snapshot (fun () ->
                   capture p ~encodings t))
          else None
        in
        (result, snap)
    end

  (* ------------------------------------------------------------------ *)
  (* Dense warm solve                                                    *)
  (* ------------------------------------------------------------------ *)

  (* Extend the snapshot's final tableau with [p]'s appended rows: widen
     every row by one slack column per appended row, express each appended
     row over the current basis by Gaussian elimination, and make its slack
     basic.  Dual feasibility is inherited from the parent's optimality
     (appended slacks have zero cost); primal feasibility generally is not
     — the rhs of an appended row may come out negative — which is exactly
     what the dual phase then repairs.  Returns [None] when the dual phase
     stalls (budget) or the cleanup detects drift: caller goes cold. *)
  let warm_attempt (s : snapshot) (d : dense_state) (p : P.t) ~st ~budget ~cancel
      : (result * snapshot option) option =
    let constrs = P.constraints p in
    let base_rows = Array.length d.d_rows in
    let base = Array.length s.s_constrs in
    let k = Array.length constrs - base in
    let ncols = d.d_ncols + k in
    let widen src =
      let nr = Array.make (ncols + 1) F.zero in
      Array.blit src 0 nr 0 d.d_ncols;
      nr.(ncols) <- src.(d.d_ncols);
      nr
    in
    let rows = Array.make (base_rows + k) [||] in
    for i = 0 to base_rows - 1 do rows.(i) <- widen d.d_rows.(i) done;
    let basis = Array.make (base_rows + k) (-1) in
    Array.blit d.d_basis 0 basis 0 base_rows;
    let is_artificial = Array.make ncols false in
    Array.blit d.d_is_artificial 0 is_artificial 0 d.d_ncols;
    let t = { rows; basis; obj = widen d.d_obj; ncols; is_artificial } in
    for e = 0 to k - 1 do
      let c = constrs.(base + e) in
      let terms, adjust = encode_terms s.s_encodings c.terms in
      let r = Array.make (ncols + 1) F.zero in
      List.iter (fun (coef, u) -> r.(u) <- F.add r.(u) coef) terms;
      r.(ncols) <- F.sub c.rhs adjust;
      let slack = d.d_ncols + e in
      (match c.op with
       | Lp_problem.Le -> r.(slack) <- F.one
       | Lp_problem.Ge -> r.(slack) <- F.neg F.one
       | Lp_problem.Eq -> assert false (* excluded by [compatible] *));
      (* Express the row over the current basis. *)
      let mrow = base_rows + e in
      for i = 0 to mrow - 1 do
        let b = basis.(i) in
        let factor = r.(b) in
        if not (F.is_zero factor) then begin
          let br = rows.(i) in
          for j = 0 to ncols do
            if not (F.is_zero br.(j)) then r.(j) <- F.sub r.(j) (F.mul factor br.(j))
          done;
          r.(b) <- F.zero
        end
      done;
      (* Normalize a Ge row so its slack is basic with coefficient +1. *)
      if c.op = Lp_problem.Ge then
        for j = 0 to ncols do r.(j) <- F.neg r.(j) done;
      rows.(mrow) <- r;
      basis.(mrow) <- slack
    done;
    (* The parent's optimality gives dual feasibility; verify cheaply in
       case the snapshot predates numeric drift (floats). *)
    let dual_ok = ref true in
    for j = 0 to ncols - 1 do
      if (not is_artificial.(j)) && F.compare t.obj.(j) F.zero < 0 then
        dual_ok := false
    done;
    if not !dual_ok then None
    else begin
      let outcome =
        Obs.Phases.time st.phases phase_dual (fun () ->
            let dp = ref 0 in
            let outcome = dual_iterate t ~pivots:dp ~budget ~cancel in
            st.dual_pivots <- st.dual_pivots + !dp;
            outcome)
      in
      match outcome with
      | Stalled -> None
      | Dual_infeasible_row -> Some (Infeasible, None)
      | Primal_feasible ->
        (* Optimality cleanup: with exact arithmetic the tableau is already
           optimal and this performs zero pivots; with floats it absorbs
           any residual negative reduced cost. *)
        let cleanup =
          Obs.Phases.time st.phases phase_phase2 (fun () ->
              let p2 = ref 0 in
              let cleanup = iterate t ~allow_artificial:false ~pivots:p2 ~cancel in
              st.phase2_pivots <- st.phase2_pivots + !p2;
              cleanup)
        in
        (match cleanup with
         | Unbounded_direction ->
           (* Cannot happen on a well-posed extension; be safe, go cold. *)
           None
         | Finished ->
           let result = read_solution p ~encodings:s.s_encodings t in
           let snap =
             Obs.Phases.time st.phases phase_snapshot (fun () ->
                 capture p ~encodings:s.s_encodings t)
           in
           Some (result, Some snap))
    end

  (* ------------------------------------------------------------------ *)
  (* Sparse revised core                                                 *)
  (* ------------------------------------------------------------------ *)

  (** Raised by the sparse core when the factorization cannot keep the
      basis numerically coherent (inexact fields only); the caller falls
      back to the dense core. *)
  exception Numerical_trouble

  type sp_form = {
    fa : F.t Sparse_mat.t;        (* m x ncols, artificial columns included *)
    fat : F.t Sparse_mat.t;       (* transpose of [fa]: column i = row i *)
    fb : F.t array;               (* rhs (base rows sign-normalized) *)
    fnstd : int;
    fncols : int;
    fbase : int;                  (* problem rows covered by the spec prefix *)
    fncols0 : int;                (* fncols before appended-row slacks *)
    fis_artificial : bool array;
  }

  (* Normalize signs, detect slack basics, append artificial columns.
     Returns mutable row term lists ((col, coef), duplicates allowed) so
     the warm path can extend them before CSC assembly. *)
  let sp_rows_of_spec (spec : spec) =
    let rows = Array.of_list spec.c_rows in
    let m = Array.length rows in
    let nstd = spec.c_nstd in
    let rhs = Array.make m F.zero in
    let row_terms = Array.make m [] in
    Array.iteri
      (fun i (terms, r) ->
        let neg = F.compare r F.zero < 0 in
        rhs.(i) <- (if neg then F.neg r else r);
        row_terms.(i) <-
          List.map (fun (c, v) -> (v, if neg then F.neg c else c)) terms)
      rows;
    let basis0 = Array.make m (-1) in
    let needs_artificial = ref [] in
    Array.iteri
      (fun i terms ->
        let found = ref (-1) in
        List.iter
          (fun (j, c) ->
            if !found < 0 && j < nstd && spec.c_slack_set.(j) && F.equal c F.one
            then found := j)
          terms;
        if !found >= 0 then basis0.(i) <- !found
        else needs_artificial := i :: !needs_artificial)
      row_terms;
    let needs_artificial = List.rev !needs_artificial in
    let nart = List.length needs_artificial in
    let ncols = nstd + nart in
    List.iteri
      (fun k i ->
        let col = nstd + k in
        row_terms.(i) <- (col, F.one) :: row_terms.(i);
        basis0.(i) <- col)
      needs_artificial;
    (row_terms, rhs, basis0, nart, nstd, ncols)

  let sp_assemble ~m ~ncols row_terms =
    Sparse_mat.of_rows ~zero:F.zero ~is_zero:F.is_zero ~add:F.add ~m ~n:ncols
      row_terms

  type sp_state = {
    form : sp_form;
    sbasis : int array;           (* row slot -> basic column *)
    in_basis : bool array;
    lu : Lu.t;
    beta : F.t array;             (* x_B by row slot *)
    dj : F.t array;               (* reduced costs, maintained incrementally *)
    costs : F.t array;            (* current phase cost vector *)
    weights : float array;        (* devex reference weights *)
    w : F.t array;                (* FTRAN workspace (entering column) *)
    rho : F.t array;              (* BTRAN workspace (pivot row multipliers) *)
    alpha : F.t array;            (* pivot row over all columns *)
    alpha_sup : int array;        (* columns where alpha may be nonzero *)
    alpha_mark : bool array;      (* membership bits for [alpha_sup] *)
    mutable alpha_n : int;        (* live prefix of [alpha_sup] *)
    bnorm : float;                (* |b|inf, residual scale *)
    mutable bland : bool;         (* Bland fallback engaged *)
    mutable stall : int;          (* consecutive degenerate pivots *)
    mutable block : int;          (* partial-pricing cursor *)
    mutable since_drift : int;
    sst : stats;
    scancel : Cancel.t;
  }

  let sp_new_state (form : sp_form) (basis : int array) ~st ~cancel : sp_state =
    let m = Array.length form.fb in
    let n = form.fncols in
    let in_basis = Array.make n false in
    Array.iter (fun c -> if c >= 0 then in_basis.(c) <- true) basis;
    let bnorm =
      Array.fold_left (fun acc x -> Float.max acc (Float.abs (F.to_float x)))
        0.0 form.fb
    in
    { form; sbasis = basis; in_basis; lu = Lu.create ();
      beta = Array.make m F.zero; dj = Array.make n F.zero;
      costs = Array.make n F.zero; weights = Array.make n 1.0;
      w = Array.make m F.zero; rho = Array.make m F.zero;
      alpha = Array.make n F.zero; alpha_sup = Array.make n 0;
      alpha_mark = Array.make n false; alpha_n = 0; bnorm;
      bland = false; stall = 0; block = 0; since_drift = 0;
      sst = st; scancel = cancel }

  (* Full reduced-cost recompute: y = BTRAN(c_B), then d_j = c_j - y·a_j. *)
  let sp_compute_dj (x : sp_state) =
    let m = Array.length x.beta in
    Obs.Phases.time x.sst.phases phase_btran (fun () ->
        for i = 0 to m - 1 do x.rho.(i) <- x.costs.(x.sbasis.(i)) done;
        Lu.btran x.lu x.rho);
    Obs.Phases.time x.sst.phases phase_price (fun () ->
        for j = 0 to x.form.fncols - 1 do
          if x.in_basis.(j) then x.dj.(j) <- F.zero
          else begin
            let acc = ref x.costs.(j) in
            Sparse_mat.iter_col x.form.fa j (fun i v ->
                if not (F.is_zero x.rho.(i)) then
                  acc := F.sub !acc (F.mul v x.rho.(i)));
            x.dj.(j) <- !acc
          end
        done)

  (* Refactorize, recompute x_B and reduced costs, and verify the fresh
     factorization reproduces b (an inexact field that cannot is beyond
     what refactorizing fixes: punt to the dense core). *)
  let sp_refactor (x : sp_state) =
    Obs.Phases.time x.sst.phases phase_factor (fun () ->
        Lu.factorize x.lu x.form.fa ~basis:x.sbasis;
        x.sst.refactorizations <- x.sst.refactorizations + 1;
        x.sst.factor_nnz <- Lu.factor_nnz x.lu;
        x.sst.eta_peak <- max x.sst.eta_peak (Lu.eta_count x.lu);
        Obs.Metrics.incr m_refactorizations;
        Array.blit x.form.fb 0 x.beta 0 (Array.length x.beta);
        Lu.ftran x.lu x.beta);
    sp_compute_dj x;
    let resid =
      Lu.residual_inf x.form.fa ~basis:x.sbasis ~rhs:x.form.fb ~xb:x.beta
    in
    if Float.abs (F.to_float resid) > trouble_tol *. (1.0 +. x.bnorm) then
      raise Numerical_trouble

  (* Refactorization policy: every K update etas, or when a periodic
     residual check sees drift beyond tolerance. *)
  let sp_maybe_refactor (x : sp_state) =
    if Lu.update_count x.lu >= max 1 tuning.refactor_every then sp_refactor x
    else begin
      x.since_drift <- x.since_drift + 1;
      if x.since_drift >= max 1 tuning.drift_check_every then begin
        x.since_drift <- 0;
        let resid =
          Lu.residual_inf x.form.fa ~basis:x.sbasis ~rhs:x.form.fb ~xb:x.beta
        in
        if Float.abs (F.to_float resid) > tuning.drift_tol *. (1.0 +. x.bnorm)
        then sp_refactor x
      end
    end

  (* Pricing: devex (max d_j^2 / w_j) over rotating partial-pricing blocks,
     or lowest-index Bland scan once the anti-cycling fallback engaged.
     Eligibility (d_j < 0) is decided by exact field comparison; the devex
     score is a float heuristic only. *)
  let sp_price (x : sp_state) ~allow_artificial =
    Obs.Phases.time x.sst.phases phase_price (fun () ->
        let n = x.form.fncols in
        let eligible j =
          (not x.in_basis.(j))
          && (allow_artificial || not x.form.fis_artificial.(j))
          && F.compare x.dj.(j) F.zero < 0
        in
        if x.bland then begin
          let rec go j =
            if j >= n then None else if eligible j then Some j else go (j + 1)
          in
          go 0
        end
        else begin
          let bs = max 1 tuning.partial_block in
          let nblocks = max 1 ((n + bs - 1) / bs) in
          let best = ref (-1) and best_score = ref 0.0 in
          let scan_block b =
            let lo = b * bs and hi = min n ((b + 1) * bs) in
            for j = lo to hi - 1 do
              if eligible j then begin
                let df = F.to_float x.dj.(j) in
                let score = df *. df /. x.weights.(j) in
                if !best < 0 || score > !best_score then begin
                  best := j;
                  best_score := score
                end
              end
            done
          in
          let rec go off =
            if off >= nblocks then None
            else begin
              let b = (x.block + off) mod nblocks in
              scan_block b;
              if !best >= 0 then begin
                x.block <- b;
                Some !best
              end
              else go (off + 1)
            end
          in
          go 0
        end)

  (* FTRAN the entering column into the workspace. *)
  let sp_ftran_col (x : sp_state) q =
    Obs.Phases.time x.sst.phases phase_ftran (fun () ->
        Array.fill x.w 0 (Array.length x.w) F.zero;
        Sparse_mat.scatter_col x.form.fa q x.w;
        Lu.ftran x.lu x.w)

  (* Primal ratio test over the FTRAN'd column.  Ties: Bland mode prefers
     the smallest basic-variable index (termination); devex mode the
     largest pivot magnitude (stability). *)
  let sp_leaving (x : sp_state) =
    let m = Array.length x.beta in
    let best = ref (-1) in
    let best_ratio = ref F.zero in
    for i = 0 to m - 1 do
      let wi = x.w.(i) in
      if F.compare wi F.zero > 0 then begin
        let ratio = F.div x.beta.(i) wi in
        if !best < 0 then begin
          best := i;
          best_ratio := ratio
        end
        else begin
          let c = F.compare ratio !best_ratio in
          if c < 0 then begin
            best := i;
            best_ratio := ratio
          end
          else if c = 0 then
            if x.bland then begin
              if x.sbasis.(i) < x.sbasis.(!best) then best := i
            end
            else if
              Float.abs (F.to_float wi) > Float.abs (F.to_float x.w.(!best))
            then best := i
        end
      end
    done;
    if !best < 0 then None else Some !best

  (* Pivot row r: rho = BTRAN(e_r), then alpha = A^T rho accumulated over
     the transpose rows where rho is nonzero — O(sum of those row lengths)
     instead of O(nnz A).  [alpha_sup] records which columns were touched
     so the pivot-update loops skip the (exactly zero) rest; the previous
     pivot's support is cleared here, keeping the invariant that alpha is
     zero off-support.  Basic columns come out 0/1 for free, which is
     exactly what the incremental d update needs for the leaving
     variable. *)
  let sp_pivot_row (x : sp_state) r =
    let m = Array.length x.rho in
    Obs.Phases.time x.sst.phases phase_btran (fun () ->
        Array.fill x.rho 0 m F.zero;
        x.rho.(r) <- F.one;
        Lu.btran x.lu x.rho);
    Obs.Phases.time x.sst.phases phase_price (fun () ->
        for k = 0 to x.alpha_n - 1 do
          let j = x.alpha_sup.(k) in
          x.alpha.(j) <- F.zero;
          x.alpha_mark.(j) <- false
        done;
        x.alpha_n <- 0;
        let at = x.form.fat in
        for i = 0 to m - 1 do
          let ri = x.rho.(i) in
          if not (F.is_zero ri) then
            Sparse_mat.iter_col at i (fun j v ->
                if not x.alpha_mark.(j) then begin
                  x.alpha_mark.(j) <- true;
                  x.alpha_sup.(x.alpha_n) <- j;
                  x.alpha_n <- x.alpha_n + 1
                end;
                x.alpha.(j) <- F.add x.alpha.(j) (F.mul v ri))
        done)

  (* Apply the pivot (q enters at row r): update x_B and reduced costs
     incrementally off the pivot row, devex weights (Forrest–Goldfarb),
     append the product-form eta, swap the basis header, and feed the
     stall/cycling heuristic. *)
  let sp_apply_pivot (x : sp_state) ~q ~r =
    let aq = x.w.(r) in
    let theta = F.div x.beta.(r) aq in
    let m = Array.length x.beta in
    if not (F.is_zero theta) then
      for i = 0 to m - 1 do
        if i <> r && not (F.is_zero x.w.(i)) then
          x.beta.(i) <- F.sub x.beta.(i) (F.mul theta x.w.(i))
      done;
    x.beta.(r) <- theta;
    let n = x.form.fncols in
    let mult = F.div x.dj.(q) aq in
    if not (F.is_zero mult) then
      for k = 0 to x.alpha_n - 1 do
        let j = x.alpha_sup.(k) in
        if j <> q && not (F.is_zero x.alpha.(j)) then
          x.dj.(j) <- F.sub x.dj.(j) (F.mul mult x.alpha.(j))
      done;
    x.dj.(q) <- F.zero;
    if not x.bland then begin
      let aqf = F.to_float aq in
      if Float.is_finite aqf && aqf <> 0.0 then begin
        let wq = x.weights.(q) in
        let maxw = ref 0.0 in
        for k = 0 to x.alpha_n - 1 do
          let j = x.alpha_sup.(k) in
          if j <> q && not (F.is_zero x.alpha.(j)) then begin
            let a = F.to_float x.alpha.(j) /. aqf in
            let cand = a *. a *. wq in
            if Float.is_finite cand && cand > x.weights.(j) then
              x.weights.(j) <- cand;
            if x.weights.(j) > !maxw then maxw := x.weights.(j)
          end
        done;
        (* Reference-framework reset once weights blow up. *)
        if !maxw > 1e8 then Array.fill x.weights 0 n 1.0
      end
    end;
    Lu.push_eta x.lu ~spike:x.w ~row:r;
    x.sst.eta_peak <- max x.sst.eta_peak (Lu.eta_count x.lu);
    let leaving = x.sbasis.(r) in
    x.in_basis.(leaving) <- false;
    x.in_basis.(q) <- true;
    x.sbasis.(r) <- q;
    if F.is_zero theta then begin
      x.stall <- x.stall + 1;
      if (not x.bland) && x.stall > tuning.stall_threshold then begin
        x.bland <- true;
        x.sst.bland_fallbacks <- x.sst.bland_fallbacks + 1;
        Obs.Metrics.incr m_bland_fallbacks
      end
    end
    else x.stall <- 0

  let rec sp_iterate (x : sp_state) ~allow_artificial ~pivots =
    sp_maybe_refactor x;
    match sp_price x ~allow_artificial with
    | None -> Finished
    | Some q ->
      sp_ftran_col x q;
      (match sp_leaving x with
       | None -> Unbounded_direction
       | Some r ->
         sp_pivot_row x r;
         sp_apply_pivot x ~q ~r;
         incr pivots;
         if !pivots land cancel_poll_mask = 0 then Cancel.check x.scancel;
         sp_iterate x ~allow_artificial ~pivots)

  (* Revised dual simplex, mirroring the dense [dual_iterate] pivot rules
     exactly (dual Bland anti-cycling, [budget]-bounded). *)
  let sp_dual_iterate (x : sp_state) ~pivots ~budget =
    let m = Array.length x.beta in
    let rec go () =
      if !pivots >= budget then Stalled
      else begin
        sp_maybe_refactor x;
        let leave = ref (-1) in
        for i = 0 to m - 1 do
          if F.compare x.beta.(i) F.zero < 0
             && (!leave < 0 || x.sbasis.(i) < x.sbasis.(!leave))
          then leave := i
        done;
        if !leave < 0 then Primal_feasible
        else begin
          let r = !leave in
          sp_pivot_row x r;
          let best = ref (-1) in
          let best_ratio = ref F.zero in
          (* Off-support alpha is exactly zero, so scanning the support
             visits every eligible (alpha_j < 0) column. *)
          for k = 0 to x.alpha_n - 1 do
            let j = x.alpha_sup.(k) in
            if (not x.form.fis_artificial.(j))
               && F.compare x.alpha.(j) F.zero < 0
            then begin
              let ratio = F.div x.dj.(j) (F.neg x.alpha.(j)) in
              let c = if !best < 0 then -1 else F.compare ratio !best_ratio in
              (* Equal ratios break to the lowest column index so the scan
                 order over the (unsorted) support does not matter. *)
              if c < 0 || (c = 0 && j < !best) then begin
                best := j;
                best_ratio := ratio
              end
            end
          done;
          if !best < 0 then Dual_infeasible_row
          else begin
            let q = !best in
            sp_ftran_col x q;
            if F.is_zero x.w.(r) then raise Numerical_trouble
            else begin
              sp_apply_pivot x ~q ~r;
              incr pivots;
              if !pivots land cancel_poll_mask = 0 then Cancel.check x.scancel;
              go ()
            end
          end
        end
      end
    in
    go ()

  let sp_read_solution (p : P.t) ~(encodings : encoding array) (x : sp_state) =
    let std = Array.make x.form.fncols F.zero in
    Array.iteri (fun r col -> std.(col) <- x.beta.(r)) x.sbasis;
    decode_std p ~encodings std

  let sp_capture (p : P.t) ~(encodings : encoding array) (x : sp_state)
      : snapshot =
    shared_snapshot_fields p ~encodings
      (Sparse_basis
         { z_basis = Array.copy x.sbasis;
           z_nstd = x.form.fnstd;
           z_ncols = x.form.fncols;
           z_base = x.form.fbase;
           z_ncols0 = x.form.fncols0;
           z_is_artificial = Array.copy x.form.fis_artificial;
           z_xb = Array.copy x.beta;
           z_dj = Array.copy x.dj })

  (* Reset per-phase pricing state (the dual phase runs Bland; each primal
     phase restarts devex with a fresh reference framework). *)
  let sp_reset_pricing (x : sp_state) ~bland =
    x.bland <- bland;
    x.stall <- 0;
    Array.fill x.weights 0 (Array.length x.weights) 1.0

  (* --- sparse cold solve --------------------------------------------- *)

  let sp_solve_with_spec (p : P.t) (spec : spec) ~st ~cancel ~want_capture
      : result * snapshot option =
    let row_terms, rhs, basis0, nart, nstd, ncols = sp_rows_of_spec spec in
    let m = Array.length rhs in
    let fa = sp_assemble ~m ~ncols row_terms in
    let form =
      { fa; fat = Sparse_mat.transpose ~zero:F.zero fa; fb = rhs;
        fnstd = nstd; fncols = ncols;
        fbase = P.num_constraints p; fncols0 = ncols;
        fis_artificial = Array.init ncols (fun j -> j >= nstd) }
    in
    let x = sp_new_state form basis0 ~st ~cancel in
    let encodings = spec.c_encodings in
    (* --- phase 1 ------------------------------------------------------ *)
    let feasible =
      if nart = 0 then true
      else
        Obs.Phases.time st.phases phase_phase1 (fun () ->
            for j = 0 to ncols - 1 do
              x.costs.(j) <- (if form.fis_artificial.(j) then F.one else F.zero)
            done;
            sp_reset_pricing x ~bland:false;
            sp_refactor x;
            let p1 = ref 0 in
            (match sp_iterate x ~allow_artificial:true ~pivots:p1 with
             | Unbounded_direction ->
               (* Phase-1 objective is bounded below by 0; cannot happen. *)
               assert false
             | Finished -> ());
            st.phase1_pivots <- st.phase1_pivots + !p1;
            let z1 = ref F.zero in
            Array.iteri
              (fun r col ->
                if form.fis_artificial.(col) then z1 := F.add !z1 x.beta.(r))
              x.sbasis;
            F.is_zero !z1)
    in
    if not feasible then (Infeasible, None)
    else begin
      (* Drive surviving artificials out of the basis (they sit at 0);
         a row whose pivot row has no nonzero real coefficient is
         redundant and keeps its artificial basic at 0, exactly as in the
         dense core. *)
      if nart > 0 then
        Obs.Phases.time st.phases phase_phase1 (fun () ->
            Array.iteri
              (fun r col ->
                if form.fis_artificial.(col) then begin
                  let mm = Array.length x.beta in
                  Obs.Phases.time st.phases phase_btran (fun () ->
                      Array.fill x.rho 0 mm F.zero;
                      x.rho.(r) <- F.one;
                      Lu.btran x.lu x.rho);
                  let q = ref (-1) in
                  for j = 0 to nstd - 1 do
                    if !q < 0 && not x.in_basis.(j) then begin
                      let acc = ref F.zero in
                      Sparse_mat.iter_col form.fa j (fun i v ->
                          if not (F.is_zero x.rho.(i)) then
                            acc := F.add !acc (F.mul v x.rho.(i)));
                      if not (F.is_zero !acc) then q := j
                    end
                  done;
                  if !q >= 0 then begin
                    sp_ftran_col x !q;
                    if not (F.is_zero x.w.(r)) then begin
                      sp_pivot_row x r;
                      sp_apply_pivot x ~q:!q ~r;
                      st.phase1_pivots <- st.phase1_pivots + 1
                    end
                  end
                end)
              (Array.copy x.sbasis));
      (* --- phase 2 ------------------------------------------------------ *)
      let outcome =
        Obs.Phases.time st.phases phase_phase2 (fun () ->
            let costs = phase2_costs p ~encodings ~ncols in
            Array.blit costs 0 x.costs 0 ncols;
            sp_reset_pricing x ~bland:false;
            if Lu.eta_count x.lu = 0 then sp_refactor x else sp_compute_dj x;
            let p2 = ref 0 in
            let outcome = sp_iterate x ~allow_artificial:false ~pivots:p2 in
            st.phase2_pivots <- st.phase2_pivots + !p2;
            outcome)
      in
      match outcome with
      | Unbounded_direction -> (Unbounded, None)
      | Finished ->
        let result = sp_read_solution p ~encodings x in
        let snap =
          if want_capture then
            Some
              (Obs.Phases.time st.phases phase_snapshot (fun () ->
                   sp_capture p ~encodings x))
          else None
        in
        (result, snap)
    end

  (* --- sparse warm solve --------------------------------------------- *)

  (* Rebuild the snapshot's standard form deterministically from the
     ORIGINAL prefix problem ([z_base] rows — not every row the snapshot
     covers: a snapshot captured by a warm solve already carries appended
     rows, and folding those into the spec would shift the column
     layout), re-append every later constraint with its slack at
     [ncols0 + e] (constraints are append-only, so the parent's appended
     slacks land back on the columns its basis references), refactorize
     the extended basis — dual feasibility is inherited exactly: the
     extended basis is block-triangular, the new rows' multipliers are
     zero, and every old reduced cost is unchanged — then repair primal
     feasibility with the budget-bounded dual phase. *)
  let sp_warm_attempt (s : snapshot) (z : sparse_state) (p : P.t) ~st ~budget
      ~cancel : (result * snapshot option) option =
    let constrs = P.constraints p in
    let base = z.z_base in
    let kpar = Array.length s.s_constrs - base in
    let k = Array.length constrs - base in
    let spec = build_spec ~limit:base p ~lowers:s.s_lowers ~uppers:s.s_uppers in
    let row_terms0, rhs0, _basis0, _nart, nstd, ncols0 = sp_rows_of_spec spec in
    let m0 = Array.length rhs0 in
    if nstd <> z.z_nstd || ncols0 <> z.z_ncols0
       || Array.length z.z_basis <> m0 + kpar
    then None
    else begin
      let m = m0 + k and ncols = ncols0 + k in
      let row_terms = Array.make m [] in
      Array.blit row_terms0 0 row_terms 0 m0;
      let rhs = Array.make m F.zero in
      Array.blit rhs0 0 rhs 0 m0;
      for e = 0 to k - 1 do
        let c = constrs.(base + e) in
        let terms, adjust = encode_terms s.s_encodings c.terms in
        let slack = ncols0 + e in
        let sterm =
          match c.op with
          | Lp_problem.Le -> (slack, F.one)
          | Lp_problem.Ge -> (slack, F.neg F.one)
          | Lp_problem.Eq ->
            (* Rows past [s_constrs] are screened by [compatible]; rows
               the snapshot already covers passed that screen when they
               were first appended. *)
            assert false
        in
        row_terms.(m0 + e) <- sterm :: List.map (fun (cf, v) -> (v, cf)) terms;
        rhs.(m0 + e) <- F.sub c.rhs adjust
      done;
      let is_artificial = Array.make ncols false in
      Array.blit z.z_is_artificial 0 is_artificial 0
        (Array.length z.z_is_artificial);
      let fa = sp_assemble ~m ~ncols row_terms in
      let form =
        { fa; fat = Sparse_mat.transpose ~zero:F.zero fa; fb = rhs;
          fnstd = nstd; fncols = ncols;
          fbase = base; fncols0 = ncols0; fis_artificial = is_artificial }
      in
      let basis = Array.make m (-1) in
      Array.blit z.z_basis 0 basis 0 (m0 + kpar);
      for e = kpar to k - 1 do basis.(m0 + e) <- ncols0 + e done;
      let x = sp_new_state form basis ~st ~cancel in
      let costs = phase2_costs p ~encodings:s.s_encodings ~ncols in
      Array.blit costs 0 x.costs 0 ncols;
      sp_reset_pricing x ~bland:true;
      sp_refactor x;
      (* Inherited dual feasibility; verify cheaply in case the snapshot
         predates numeric drift (floats). *)
      let dual_ok = ref true in
      for j = 0 to ncols - 1 do
        if (not is_artificial.(j)) && F.compare x.dj.(j) F.zero < 0 then
          dual_ok := false
      done;
      if not !dual_ok then None
      else begin
        let outcome =
          Obs.Phases.time st.phases phase_dual (fun () ->
              let dp = ref 0 in
              let outcome = sp_dual_iterate x ~pivots:dp ~budget in
              st.dual_pivots <- st.dual_pivots + !dp;
              outcome)
        in
        match outcome with
        | Stalled -> None
        | Dual_infeasible_row -> Some (Infeasible, None)
        | Primal_feasible ->
          (* Optimality cleanup: exact arithmetic performs zero pivots
             here; floats absorb residual negative reduced costs. *)
          let cleanup =
            Obs.Phases.time st.phases phase_phase2 (fun () ->
                sp_reset_pricing x ~bland:false;
                let p2 = ref 0 in
                let cleanup = sp_iterate x ~allow_artificial:false ~pivots:p2 in
                st.phase2_pivots <- st.phase2_pivots + !p2;
                cleanup)
          in
          (match cleanup with
           | Unbounded_direction -> None
           | Finished ->
             let result = sp_read_solution p ~encodings:s.s_encodings x in
             let snap =
               Obs.Phases.time st.phases phase_snapshot (fun () ->
                   sp_capture p ~encodings:s.s_encodings x)
             in
             Some (result, Some snap))
      end
    end

  (* ------------------------------------------------------------------ *)
  (* Core dispatch                                                       *)
  (* ------------------------------------------------------------------ *)

  let resolve_core core (p : P.t) =
    let c = match core with Some c -> c | None -> !default_core_ref in
    match c with
    | Auto ->
      if P.num_constraints p <= tuning.auto_dense_rows then Dense else Sparse
    | c -> c

  let solve_cold ~core (p : P.t) ~st ~cancel ~want_capture
      : result * snapshot option =
    let nvars = P.num_vars p in
    let lowers = P.var_lowers p and uppers = P.var_uppers p in
    let infeasible_bounds =
      let rec go j =
        j < nvars
        && (match lowers.(j), uppers.(j) with
            | Some lo, Some hi when F.compare hi lo < 0 -> true
            | _ -> go (j + 1))
      in
      go 0
    in
    if infeasible_bounds then (Infeasible, None)
    else begin
      let spec = build_spec p ~lowers ~uppers in
      match core with
      | Dense | Auto -> dense_solve_with_spec p spec ~st ~cancel ~want_capture
      | Sparse -> (
        try sp_solve_with_spec p spec ~st ~cancel ~want_capture
        with Lu.Singular | Numerical_trouble ->
          Obs.Metrics.incr m_dense_fallbacks;
          dense_solve_with_spec p spec ~st ~cancel ~want_capture)
    end

  (* ------------------------------------------------------------------ *)
  (* Entry points                                                        *)
  (* ------------------------------------------------------------------ *)

  let solve_stats_body ~cancel ~core (p : P.t) : result * stats =
    let st = fresh_stats () in
    Obs.Metrics.incr m_solves;
    let core = resolve_core core p in
    let result, _ = solve_cold ~core p ~st ~cancel ~want_capture:false in
    st.pivots <- st.phase1_pivots + st.phase2_pivots;
    Obs.Metrics.add m_pivots st.pivots;
    observe_phase_histograms st;
    (result, st)

  let solve_stats ?(cancel = Cancel.none) ?core (p : P.t) : result * stats =
    Obs.span "simplex.solve" (fun () ->
        let ((_, st) as r) = solve_stats_body ~cancel ~core p in
        Obs.add_attr "pivots" (Obs.Int st.pivots);
        r)

  let solve ?cancel ?core (p : P.t) : result = fst (solve_stats ?cancel ?core p)

  (** Outcome of a {!solve_warm} call.  [warm_used] means the result came
      from the warm path (snapshot accepted, dual phase converged);
      [fell_back] means a snapshot was offered but a cold solve produced
      the result (incompatible snapshot, dual-phase stall, or drift).
      [snapshot] captures the final basis of an optimal solve — warm or
      cold — for the next re-solve. *)
  type warm_outcome = {
    result : result;
    stats : stats;
    warm_used : bool;
    fell_back : bool;
    snapshot : snapshot option;
  }

  (** Solve [p], optionally warm-starting [?from] a snapshot of a previous
      optimal solve of a prefix problem.  The warm replay always runs on
      the core that produced the snapshot; [?core] (or the global default)
      picks the core for cold solves.  The default dual-pivot budget
      scales with the basis height; a stall falls back to a cold solve, so
      a warm start can never yield a different answer than a cold one —
      only fewer (or, pathologically, more) pivots. *)
  let solve_warm ?(cancel = Cancel.none) ?from ?max_dual_pivots ?core (p : P.t)
      : warm_outcome =
    Obs.span "simplex.solve" (fun () ->
        let st = fresh_stats () in
        Obs.Metrics.incr m_solves;
        let cold_core = resolve_core core p in
        let warm_used = ref false and fell_back = ref false in
        let cold () = solve_cold ~core:cold_core p ~st ~cancel ~want_capture:true in
        let result, snapshot =
          match from with
          | None -> cold ()
          | Some s ->
            if not (compatible s p) then begin
              fell_back := true;
              cold ()
            end
            else begin
              let budget =
                match max_dual_pivots with
                | Some b -> b
                | None -> 64 + (4 * (snapshot_rows s + snapshot_extra_rows s p))
              in
              let attempt =
                match s.s_state with
                | Dense_basis d -> warm_attempt s d p ~st ~budget ~cancel
                | Sparse_basis z -> (
                  try sp_warm_attempt s z p ~st ~budget ~cancel
                  with Lu.Singular | Numerical_trouble -> None)
              in
              match attempt with
              | Some (result, snap) ->
                warm_used := true;
                Obs.Metrics.incr m_warm_starts;
                (result, snap)
              | None ->
                fell_back := true;
                cold ()
            end
        in
        st.pivots <- st.phase1_pivots + st.phase2_pivots + st.dual_pivots;
        Obs.Metrics.add m_pivots st.pivots;
        if st.dual_pivots > 0 then Obs.Metrics.add m_dual_pivots st.dual_pivots;
        observe_phase_histograms st;
        Obs.add_attr "pivots" (Obs.Int st.pivots);
        if !warm_used then Obs.add_attr "warm" (Obs.Bool true);
        { result; stats = st; warm_used = !warm_used; fell_back = !fell_back;
          snapshot })
end
