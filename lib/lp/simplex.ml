(** Two-phase primal simplex over an arbitrary ordered field, with warm
    restarts.

    The implementation is the classic dense full-tableau method with Bland's
    anti-cycling rule.  General variable bounds are removed up front by
    substitution (shifted, reflected or split into positive/negative parts),
    inequality rows gain slack/surplus columns, and phase 1 introduces
    artificial columns only for rows that lack a natural basic slack.

    A cold solve can additionally capture a {!snapshot} of its final
    tableau.  {!solve_warm} re-solves a problem that extends the snapshot's
    problem by appended [<=]/[>=] rows (branching cuts, operator pins)
    without re-running phase 1: the new rows are expressed over the parent
    basis with their slacks basic, and the resulting primal infeasibility is
    repaired by a bounded dual-simplex phase that preserves dual
    feasibility.  Any structural mismatch — different variables, bounds,
    objective, edited prefix rows, appended equality rows — silently falls
    back to a cold solve, so a stale snapshot can cost time but never
    correctness.

    Performance is adequate for DART's repair MILPs (hundreds of rows); the
    point of the functor is that instantiating with {!Field_rat} gives an
    exact solver with no feasibility tolerance at all. *)

module Obs = Dart_obs.Obs
module Cancel = Dart_resilience.Cancel

module Make (F : Field.S) = struct
  module P = Lp_problem.Make (F)

  type result =
    | Optimal of { objective : F.t; assignment : F.t array }
    | Infeasible
    | Unbounded

  (** Effort counters for one [solve] call (satellite of the dart_obs PR:
      solver work must be measurable, not silent).  [phases] attributes the
      wall-clock time of the same call across the named phases ["phase1"],
      ["phase2"], ["dual"] and ["snapshot"], so a profile can say not just
      how many pivots were spent but {e where} the microseconds went. *)
  type stats = {
    mutable pivots : int;         (** total pivot operations, all phases *)
    mutable phase1_pivots : int;  (** pivots spent reaching feasibility *)
    mutable phase2_pivots : int;  (** pivots spent optimizing *)
    mutable dual_pivots : int;    (** pivots spent repairing primal
                                      feasibility after a warm restart *)
    phases : Obs.Phases.t;        (** per-phase wall-clock attribution *)
  }

  let fresh_stats () =
    { pivots = 0; phase1_pivots = 0; phase2_pivots = 0; dual_pivots = 0;
      phases = Obs.Phases.create () }

  let phase_phase1 = "phase1"
  let phase_phase2 = "phase2"
  let phase_dual = "dual"
  let phase_snapshot = "snapshot"

  let m_solves = Obs.Metrics.counter "lp.simplex.solves"
  let m_pivots = Obs.Metrics.counter "lp.simplex.pivots"
  let m_warm_starts = Obs.Metrics.counter "lp.simplex.warm_starts"
  let m_dual_pivots = Obs.Metrics.counter "lp.simplex.dual_pivots"

  (* Phase-time histograms (milliseconds, one observation per solve that
     ran the phase).  These flow through [Obs.Metrics.snapshot] and the
     Prometheus exposition unchanged, so the server's existing stats
     endpoints pick them up without new plumbing. *)
  let h_phase1_ms = Obs.Metrics.histogram "lp.simplex.phase1_ms"
  let h_phase2_ms = Obs.Metrics.histogram "lp.simplex.phase2_ms"
  let h_dual_ms = Obs.Metrics.histogram "lp.simplex.dual_ms"
  let h_snapshot_ms = Obs.Metrics.histogram "lp.simplex.snapshot_ms"

  let observe_phase_histograms (st : stats) =
    List.iter
      (fun (name, h) ->
        if Obs.Phases.count st.phases name > 0 then
          Obs.Metrics.observe h (Obs.Phases.total_us st.phases name /. 1000.0))
      [ (phase_phase1, h_phase1_ms); (phase_phase2, h_phase2_ms);
        (phase_dual, h_dual_ms); (phase_snapshot, h_snapshot_ms) ]

  (* How an original variable is represented over the non-negative standard
     variables. *)
  type encoding =
    | Shifted of int * F.t        (* x = u + lo *)
    | Reflected of int * F.t      (* x = hi - u *)
    | Split of int * int          (* x = u_pos - u_neg *)

  type tableau = {
    mutable rows : F.t array array; (* m rows, each of length ncols + 1 (rhs last) *)
    mutable basis : int array;      (* basic variable of each row *)
    obj : F.t array;                (* reduced-cost row, length ncols + 1 *)
    ncols : int;
    is_artificial : bool array;     (* per-column artificial flag; artificials
                                       never (re-)enter the basis in phase 2
                                       or in the dual phase *)
  }

  (** The final state of an optimal solve, sufficient to warm-start a
      re-solve of the same problem extended by appended inequality rows.
      Everything needed to validate compatibility is carried along
      ([s_lowers]/[s_uppers]/[s_objective]/[s_constrs]) so a mismatched
      snapshot is detected, never trusted. *)
  type snapshot = {
    s_nvars : int;
    s_lowers : F.t option array;
    s_uppers : F.t option array;
    s_minimize : bool;
    s_objective : (F.t * int) list;
    s_constrs : P.constr array;       (* problem rows covered by the basis *)
    s_encodings : encoding array;
    s_rows : F.t array array;         (* final tableau rows *)
    s_obj : F.t array;                (* final reduced-cost row *)
    s_basis : int array;
    s_is_artificial : bool array;
    s_ncols : int;
  }

  let pivot t ~row ~col =
    let r = t.rows.(row) in
    let piv = r.(col) in
    let n = t.ncols in
    for j = 0 to n do
      if not (F.is_zero r.(j)) then r.(j) <- F.div r.(j) piv
    done;
    r.(col) <- F.one;
    let eliminate (other : F.t array) =
      let factor = other.(col) in
      if not (F.is_zero factor) then begin
        for j = 0 to n do
          if not (F.is_zero r.(j)) then other.(j) <- F.sub other.(j) (F.mul factor r.(j))
        done;
        other.(col) <- F.zero
      end
    in
    Array.iteri (fun i other -> if i <> row then eliminate other) t.rows;
    eliminate t.obj;
    t.basis.(row) <- col

  (* Bland's rule: entering = lowest-index column with negative reduced cost
     (artificials are never allowed to re-enter once phase 1 is done). *)
  let entering_column t ~allow_artificial =
    let rec go j =
      if j >= t.ncols then None
      else if (allow_artificial || not t.is_artificial.(j))
              && F.compare t.obj.(j) F.zero < 0 then Some j
      else go (j + 1)
    in
    go 0

  let leaving_row t ~col =
    let m = Array.length t.rows in
    let best = ref None in
    for i = 0 to m - 1 do
      let a = t.rows.(i).(col) in
      if F.compare a F.zero > 0 then begin
        let ratio = F.div t.rows.(i).(t.ncols) a in
        match !best with
        | None -> best := Some (i, ratio)
        | Some (bi, bratio) ->
          let c = F.compare ratio bratio in
          (* Tie-break on the basic variable index (Bland). *)
          if c < 0 || (c = 0 && t.basis.(i) < t.basis.(bi)) then best := Some (i, ratio)
      end
    done;
    Option.map fst !best

  type iterate_outcome = Finished | Unbounded_direction

  (* Cancellation is polled every 64 pivots: cheap enough to be free on
     the small LPs, frequent enough that a deadline aborts a pathological
     tableau within milliseconds. *)
  let cancel_poll_mask = 63

  let rec iterate t ~allow_artificial ~pivots ~cancel =
    match entering_column t ~allow_artificial with
    | None -> Finished
    | Some col ->
      (match leaving_row t ~col with
       | None -> Unbounded_direction
       | Some row ->
         pivot t ~row ~col;
         incr pivots;
         if !pivots land cancel_poll_mask = 0 then Cancel.check cancel;
         iterate t ~allow_artificial ~pivots ~cancel)

  (* Dual simplex: starting from a dual-feasible tableau (all non-artificial
     reduced costs >= 0) with some negative rhs entries, restore primal
     feasibility while keeping dual feasibility.  Anti-cycling by the dual
     Bland rule: leaving row = smallest basic-variable index among
     infeasible rows; entering column = smallest index among the minimum
     ratio obj_j / -a_rj over a_rj < 0.  [budget] bounds the pivot count
     (the caller falls back to a cold solve on a stall). *)
  type dual_outcome = Primal_feasible | Dual_infeasible_row | Stalled

  let dual_iterate t ~pivots ~budget ~cancel =
    let m = Array.length t.rows in
    let rec go () =
      if !pivots >= budget then Stalled
      else begin
        let leave = ref (-1) in
        for i = 0 to m - 1 do
          if F.compare t.rows.(i).(t.ncols) F.zero < 0
             && (!leave < 0 || t.basis.(i) < t.basis.(!leave))
          then leave := i
        done;
        if !leave < 0 then Primal_feasible
        else begin
          let r = t.rows.(!leave) in
          let best = ref (-1) in
          let best_ratio = ref F.zero in
          for j = 0 to t.ncols - 1 do
            if (not t.is_artificial.(j)) && F.compare r.(j) F.zero < 0 then begin
              let ratio = F.div t.obj.(j) (F.neg r.(j)) in
              if !best < 0 || F.compare ratio !best_ratio < 0 then begin
                best := j;
                best_ratio := ratio
              end
            end
          done;
          if !best < 0 then
            (* rhs < 0 with every real coefficient >= 0: no non-negative
               assignment can satisfy the row (artificials are 0 in any
               solution of the original problem), so it is a certificate of
               primal infeasibility. *)
            Dual_infeasible_row
          else begin
            pivot t ~row:!leave ~col:!best;
            incr pivots;
            if !pivots land cancel_poll_mask = 0 then Cancel.check cancel;
            go ()
          end
        end
      end
    in
    go ()

  (* Install a cost vector into the reduced-cost row and re-eliminate the
     basic columns so the row is expressed over nonbasic variables only. *)
  let install_costs t (costs : F.t array) =
    let n = t.ncols in
    for j = 0 to n do t.obj.(j) <- F.zero done;
    Array.iteri (fun j c -> t.obj.(j) <- c) costs;
    Array.iteri
      (fun i b ->
        let factor = t.obj.(b) in
        if not (F.is_zero factor) then begin
          let r = t.rows.(i) in
          for j = 0 to n do
            if not (F.is_zero r.(j)) then t.obj.(j) <- F.sub t.obj.(j) (F.mul factor r.(j))
          done;
          t.obj.(b) <- F.zero
        end)
      t.basis

  (* Current objective value: the rhs cell of the reduced-cost row holds -z. *)
  let objective_value t = F.neg t.obj.(t.ncols)

  (* Substitute the variable encodings into a term list.
     Returns (std terms, rhs adjustment to subtract). *)
  let encode_terms (encodings : encoding array) terms =
    let adjust = ref F.zero in
    let out = ref [] in
    List.iter
      (fun (c, v) ->
        match encodings.(v) with
        | Shifted (u, lo) ->
          out := (c, u) :: !out;
          adjust := F.add !adjust (F.mul c lo)
        | Reflected (u, hi) ->
          out := (F.neg c, u) :: !out;
          adjust := F.add !adjust (F.mul c hi)
        | Split (up, un) -> out := (c, up) :: (F.neg c, un) :: !out)
      terms;
    (!out, !adjust)

  (* Read the original-variable solution off a primal-feasible tableau. *)
  let read_solution (p : P.t) ~(encodings : encoding array) t =
    let std = Array.make t.ncols F.zero in
    Array.iteri (fun i b -> std.(b) <- t.rows.(i).(t.ncols)) t.basis;
    let assignment =
      Array.init (P.num_vars p) (fun j ->
          match encodings.(j) with
          | Shifted (u, lo) -> F.add std.(u) lo
          | Reflected (u, hi) -> F.sub hi std.(u)
          | Split (up, un) -> F.sub std.(up) std.(un))
    in
    (* Objective constant part comes from the variable substitutions:
       recompute the true objective directly for robustness. *)
    let objective = P.eval_terms (P.objective p) assignment in
    Optimal { objective; assignment }

  let capture (p : P.t) ~(encodings : encoding array) t : snapshot =
    { s_nvars = P.num_vars p;
      s_lowers = P.var_lowers p;
      s_uppers = P.var_uppers p;
      s_minimize = P.minimize p;
      s_objective = P.objective p;
      s_constrs = P.constraints p;
      s_encodings = Array.copy encodings;
      s_rows = Array.map Array.copy t.rows;
      s_obj = Array.copy t.obj;
      s_basis = Array.copy t.basis;
      s_is_artificial = Array.copy t.is_artificial;
      s_ncols = t.ncols }

  (** Does the snapshot's basis satisfy the warm-start invariants?  Primal:
      every basic value (tableau rhs) is non-negative.  Dual: every
      non-artificial reduced cost is non-negative.  Both hold after any
      optimal solve; the warm path relies on the dual half.  Exposed for
      the property tests that pin the invariants. *)
  let snapshot_primal_feasible (s : snapshot) =
    Array.for_all (fun r -> F.compare r.(s.s_ncols) F.zero >= 0) s.s_rows

  let snapshot_dual_feasible (s : snapshot) =
    let ok = ref true in
    for j = 0 to s.s_ncols - 1 do
      if (not s.s_is_artificial.(j)) && F.compare s.s_obj.(j) F.zero < 0 then
        ok := false
    done;
    !ok

  (** Number of appended rows a problem adds on top of a snapshot (only
      meaningful when {!compatible}). *)
  let snapshot_extra_rows (s : snapshot) (p : P.t) =
    P.num_constraints p - Array.length s.s_constrs

  (* ------------------------------------------------------------------ *)
  (* Snapshot compatibility                                              *)
  (* ------------------------------------------------------------------ *)

  let bound_equal a b =
    match a, b with
    | None, None -> true
    | Some x, Some y -> F.equal x y
    | _ -> false

  let rec terms_equal a b =
    match a, b with
    | [], [] -> true
    | (c1, v1) :: ra, (c2, v2) :: rb ->
      v1 = v2 && F.equal c1 c2 && terms_equal ra rb
    | _ -> false

  let constr_equal (c1 : P.constr) (c2 : P.constr) =
    c1 == c2
    || (c1.op = c2.op && F.equal c1.rhs c2.rhs && terms_equal c1.terms c2.terms)

  (** Is [p] the snapshot's problem plus appended [<=]/[>=] rows?  Checks
      variables, bounds, objective sense and terms, that the snapshot's
      rows are an unchanged prefix of [p]'s rows, and that every extra row
      is an inequality (equality rows have no slack to make basic).  Any
      mismatch means the basis cannot be reused. *)
  let compatible (s : snapshot) (p : P.t) =
    P.num_vars p = s.s_nvars
    && P.minimize p = s.s_minimize
    && terms_equal (P.objective p) s.s_objective
    &&
    let lowers = P.var_lowers p and uppers = P.var_uppers p in
    let rec bounds_ok j =
      j >= s.s_nvars
      || (bound_equal lowers.(j) s.s_lowers.(j)
          && bound_equal uppers.(j) s.s_uppers.(j)
          && bounds_ok (j + 1))
    in
    bounds_ok 0
    &&
    let constrs = P.constraints p in
    let base = Array.length s.s_constrs in
    Array.length constrs >= base
    &&
    let rec prefix_ok i =
      i >= base || (constr_equal constrs.(i) s.s_constrs.(i) && prefix_ok (i + 1))
    in
    prefix_ok 0
    &&
    let rec extras_ok i =
      i >= Array.length constrs
      || (constrs.(i).op <> Lp_problem.Eq && extras_ok (i + 1))
    in
    extras_ok base

  (* ------------------------------------------------------------------ *)
  (* Cold solve                                                          *)
  (* ------------------------------------------------------------------ *)

  let solve_with_bounds (p : P.t) ~lowers ~uppers ~st ~cancel ~want_capture
      : result * snapshot option =
    let nvars = P.num_vars p in
    (* --- 1. encode variables over non-negative standard variables ------- *)
    let next = ref 0 in
    let fresh () = let v = !next in incr next; v in
    let extra_rows = ref [] in (* upper-bound rows u <= hi - lo *)
    let encodings =
      Array.init nvars (fun j ->
          match lowers.(j), uppers.(j) with
          | Some lo, Some hi ->
            let u = fresh () in
            extra_rows := (u, F.sub hi lo) :: !extra_rows;
            Shifted (u, lo)
          | Some lo, None -> Shifted (fresh (), lo)
          | None, Some hi -> Reflected (fresh (), hi)
          | None, None ->
            let up = fresh () in
            let un = fresh () in
            Split (up, un))
    in
    (* --- 2. build equality rows with slack columns ---------------------- *)
    let constrs = P.constraints p in
    let rows_spec = ref [] in (* (terms over std vars incl. slack, rhs) *)
    let slack_cols = ref [] in
    let add_row terms op rhs =
      match op with
      | Lp_problem.Eq -> rows_spec := (terms, rhs) :: !rows_spec
      | Lp_problem.Le ->
        let s = fresh () in
        slack_cols := s :: !slack_cols;
        rows_spec := ((F.one, s) :: terms, rhs) :: !rows_spec
      | Lp_problem.Ge ->
        let s = fresh () in
        slack_cols := s :: !slack_cols;
        rows_spec := ((F.neg F.one, s) :: terms, rhs) :: !rows_spec
    in
    (* Bound-cap rows come first so that their slack columns sit directly
       after the encoding columns: constraint rows then occupy the highest
       columns in declaration order, which keeps a snapshot's column
       layout a prefix of any extended problem's layout (warm starts
       append columns, never reshuffle them). *)
    List.iter
      (fun (u, cap) -> add_row [ (F.one, u) ] Lp_problem.Le cap)
      (List.rev !extra_rows);
    Array.iter
      (fun (c : P.constr) ->
        let terms, adjust = encode_terms encodings c.terms in
        add_row terms c.op (F.sub c.rhs adjust))
      constrs;
    let rows_spec = List.rev !rows_spec in
    begin
      let nstd = !next in
      let m = List.length rows_spec in
      (* --- 3. normalize rhs signs, pick basic columns, add artificials -- *)
      let dense = Array.make_matrix m (nstd + 1) F.zero in
      List.iteri
        (fun i (terms, rhs) ->
          List.iter (fun (c, v) -> dense.(i).(v) <- F.add dense.(i).(v) c) terms;
          dense.(i).(nstd) <- rhs)
        rows_spec;
      Array.iter
        (fun r ->
          if F.compare r.(nstd) F.zero < 0 then
            Array.iteri (fun j x -> r.(j) <- F.neg x) r)
        dense;
      (* A row can use its slack as the initial basic variable iff the slack
         coefficient survived as +1 after sign normalization. *)
      let slack_set = Array.make nstd false in
      List.iter (fun s -> slack_set.(s) <- true) !slack_cols;
      let basis0 = Array.make m (-1) in
      let needs_artificial = ref [] in
      Array.iteri
        (fun i r ->
          let found = ref (-1) in
          for j = 0 to nstd - 1 do
            if !found < 0 && slack_set.(j) && F.equal r.(j) F.one then begin
              (* Must be the only row touching this slack (always true: each
                 slack occurs in exactly one row). *)
              found := j
            end
          done;
          if !found >= 0 then basis0.(i) <- !found else needs_artificial := i :: !needs_artificial)
        dense;
      let nart = List.length !needs_artificial in
      let ncols = nstd + nart in
      let rows =
        Array.mapi
          (fun _ r ->
            let nr = Array.make (ncols + 1) F.zero in
            Array.blit r 0 nr 0 nstd;
            nr.(ncols) <- r.(nstd);
            nr)
          dense
      in
      List.iteri
        (fun k i ->
          let col = nstd + k in
          rows.(i).(col) <- F.one;
          basis0.(i) <- col)
        (List.rev !needs_artificial);
      let is_artificial = Array.init ncols (fun j -> j >= nstd) in
      let t =
        { rows; basis = basis0; obj = Array.make (ncols + 1) F.zero; ncols;
          is_artificial }
      in
      (* --- 4. phase 1 ----------------------------------------------------- *)
      let phase1_needed = nart > 0 in
      let feasible =
        if not phase1_needed then true
        else
          Obs.Phases.time st.phases phase_phase1 (fun () ->
              let costs = Array.make (ncols + 1) F.zero in
              for j = nstd to ncols - 1 do costs.(j) <- F.one done;
              install_costs t costs;
              let p1 = ref 0 in
              (match iterate t ~allow_artificial:true ~pivots:p1 ~cancel with
               | Unbounded_direction ->
                 (* Phase-1 objective is bounded below by 0; cannot happen. *)
                 assert false
               | Finished -> ());
              st.phase1_pivots <- st.phase1_pivots + !p1;
              F.is_zero (objective_value t))
      in
      if not feasible then (Infeasible, None)
      else begin
        (* Drive surviving artificials out of the basis (they sit at 0).
           Still phase-1 work for attribution purposes. *)
        if phase1_needed then
          Obs.Phases.time st.phases phase_phase1 (fun () ->
              Array.iteri
                (fun i b ->
                  if t.is_artificial.(b) then begin
                    let r = t.rows.(i) in
                    let col = ref (-1) in
                    for j = 0 to nstd - 1 do
                      if !col < 0 && not (F.is_zero r.(j)) then col := j
                    done;
                    if !col >= 0 then begin
                      pivot t ~row:i ~col:!col;
                      st.phase1_pivots <- st.phase1_pivots + 1
                    end
                    (* else: redundant 0 = 0 row; the artificial stays basic
                       at 0 and can never become positive: its row has no
                       nonzero real coefficient, so pivots on real columns
                       leave it untouched. *)
                  end)
                (Array.copy t.basis));
        (* --- 5. phase 2 --------------------------------------------------- *)
        let outcome =
          Obs.Phases.time st.phases phase_phase2 (fun () ->
              let costs = Array.make (ncols + 1) F.zero in
              let sense = if P.minimize p then F.one else F.neg F.one in
              List.iter
                (fun (c, v) ->
                  let c = F.mul sense c in
                  match encodings.(v) with
                  | Shifted (u, _) -> costs.(u) <- F.add costs.(u) c
                  | Reflected (u, _) -> costs.(u) <- F.sub costs.(u) c
                  | Split (up, un) ->
                    costs.(up) <- F.add costs.(up) c;
                    costs.(un) <- F.sub costs.(un) c)
                (P.objective p);
              install_costs t costs;
              let p2 = ref 0 in
              let outcome = iterate t ~allow_artificial:false ~pivots:p2 ~cancel in
              st.phase2_pivots <- st.phase2_pivots + !p2;
              outcome)
        in
        match outcome with
        | Unbounded_direction -> (Unbounded, None)
        | Finished ->
          (* --- 6. read the solution back -------------------------------- *)
          let result = read_solution p ~encodings t in
          let snap =
            if want_capture then
              Some
                (Obs.Phases.time st.phases phase_snapshot (fun () ->
                     capture p ~encodings t))
            else None
          in
          (result, snap)
      end
    end

  let solve_cold (p : P.t) ~st ~cancel ~want_capture : result * snapshot option =
    let nvars = P.num_vars p in
    let lowers = P.var_lowers p and uppers = P.var_uppers p in
    let infeasible_bounds =
      let rec go j =
        j < nvars
        && (match lowers.(j), uppers.(j) with
            | Some lo, Some hi when F.compare hi lo < 0 -> true
            | _ -> go (j + 1))
      in
      go 0
    in
    if infeasible_bounds then (Infeasible, None)
    else solve_with_bounds p ~lowers ~uppers ~st ~cancel ~want_capture

  (* ------------------------------------------------------------------ *)
  (* Warm solve                                                          *)
  (* ------------------------------------------------------------------ *)

  (* Extend the snapshot's final tableau with [p]'s appended rows: widen
     every row by one slack column per appended row, express each appended
     row over the current basis by Gaussian elimination, and make its slack
     basic.  Dual feasibility is inherited from the parent's optimality
     (appended slacks have zero cost); primal feasibility generally is not
     — the rhs of an appended row may come out negative — which is exactly
     what the dual phase then repairs.  Returns [None] when the dual phase
     stalls (budget) or the cleanup detects drift: caller goes cold. *)
  let warm_attempt (s : snapshot) (p : P.t) ~st ~budget ~cancel
      : (result * snapshot option) option =
    let constrs = P.constraints p in
    let base_rows = Array.length s.s_rows in
    let base = Array.length s.s_constrs in
    let k = Array.length constrs - base in
    let ncols = s.s_ncols + k in
    let widen src =
      let nr = Array.make (ncols + 1) F.zero in
      Array.blit src 0 nr 0 s.s_ncols;
      nr.(ncols) <- src.(s.s_ncols);
      nr
    in
    let rows = Array.make (base_rows + k) [||] in
    for i = 0 to base_rows - 1 do rows.(i) <- widen s.s_rows.(i) done;
    let basis = Array.make (base_rows + k) (-1) in
    Array.blit s.s_basis 0 basis 0 base_rows;
    let is_artificial = Array.make ncols false in
    Array.blit s.s_is_artificial 0 is_artificial 0 s.s_ncols;
    let t = { rows; basis; obj = widen s.s_obj; ncols; is_artificial } in
    for e = 0 to k - 1 do
      let c = constrs.(base + e) in
      let terms, adjust = encode_terms s.s_encodings c.terms in
      let r = Array.make (ncols + 1) F.zero in
      List.iter (fun (coef, u) -> r.(u) <- F.add r.(u) coef) terms;
      r.(ncols) <- F.sub c.rhs adjust;
      let slack = s.s_ncols + e in
      (match c.op with
       | Lp_problem.Le -> r.(slack) <- F.one
       | Lp_problem.Ge -> r.(slack) <- F.neg F.one
       | Lp_problem.Eq -> assert false (* excluded by [compatible] *));
      (* Express the row over the current basis. *)
      let mrow = base_rows + e in
      for i = 0 to mrow - 1 do
        let b = basis.(i) in
        let factor = r.(b) in
        if not (F.is_zero factor) then begin
          let br = rows.(i) in
          for j = 0 to ncols do
            if not (F.is_zero br.(j)) then r.(j) <- F.sub r.(j) (F.mul factor br.(j))
          done;
          r.(b) <- F.zero
        end
      done;
      (* Normalize a Ge row so its slack is basic with coefficient +1. *)
      if c.op = Lp_problem.Ge then
        for j = 0 to ncols do r.(j) <- F.neg r.(j) done;
      rows.(mrow) <- r;
      basis.(mrow) <- slack
    done;
    (* The parent's optimality gives dual feasibility; verify cheaply in
       case the snapshot predates numeric drift (floats). *)
    let dual_ok = ref true in
    for j = 0 to ncols - 1 do
      if (not is_artificial.(j)) && F.compare t.obj.(j) F.zero < 0 then
        dual_ok := false
    done;
    if not !dual_ok then None
    else begin
      let outcome =
        Obs.Phases.time st.phases phase_dual (fun () ->
            let dp = ref 0 in
            let outcome = dual_iterate t ~pivots:dp ~budget ~cancel in
            st.dual_pivots <- st.dual_pivots + !dp;
            outcome)
      in
      match outcome with
      | Stalled -> None
      | Dual_infeasible_row -> Some (Infeasible, None)
      | Primal_feasible ->
        (* Optimality cleanup: with exact arithmetic the tableau is already
           optimal and this performs zero pivots; with floats it absorbs
           any residual negative reduced cost. *)
        let cleanup =
          Obs.Phases.time st.phases phase_phase2 (fun () ->
              let p2 = ref 0 in
              let cleanup = iterate t ~allow_artificial:false ~pivots:p2 ~cancel in
              st.phase2_pivots <- st.phase2_pivots + !p2;
              cleanup)
        in
        (match cleanup with
         | Unbounded_direction ->
           (* Cannot happen on a well-posed extension; be safe, go cold. *)
           None
         | Finished ->
           let result = read_solution p ~encodings:s.s_encodings t in
           let snap =
             Obs.Phases.time st.phases phase_snapshot (fun () ->
                 capture p ~encodings:s.s_encodings t)
           in
           Some (result, Some snap))
    end

  (* ------------------------------------------------------------------ *)
  (* Entry points                                                        *)
  (* ------------------------------------------------------------------ *)

  let solve_stats_body ~cancel (p : P.t) : result * stats =
    let st = fresh_stats () in
    Obs.Metrics.incr m_solves;
    let result, _ = solve_cold p ~st ~cancel ~want_capture:false in
    st.pivots <- st.phase1_pivots + st.phase2_pivots;
    Obs.Metrics.add m_pivots st.pivots;
    observe_phase_histograms st;
    (result, st)

  let solve_stats ?(cancel = Cancel.none) (p : P.t) : result * stats =
    Obs.span "simplex.solve" (fun () ->
        let ((_, st) as r) = solve_stats_body ~cancel p in
        Obs.add_attr "pivots" (Obs.Int st.pivots);
        r)

  let solve ?cancel (p : P.t) : result = fst (solve_stats ?cancel p)

  (** Outcome of a {!solve_warm} call.  [warm_used] means the result came
      from the warm path (snapshot accepted, dual phase converged);
      [fell_back] means a snapshot was offered but a cold solve produced
      the result (incompatible snapshot, dual-phase stall, or drift).
      [snapshot] captures the final basis of an optimal solve — warm or
      cold — for the next re-solve. *)
  type warm_outcome = {
    result : result;
    stats : stats;
    warm_used : bool;
    fell_back : bool;
    snapshot : snapshot option;
  }

  (** Solve [p], optionally warm-starting [?from] a snapshot of a previous
      optimal solve of a prefix problem.  The default dual-pivot budget
      scales with the tableau height; a stall falls back to a cold solve,
      so a warm start can never yield a different answer than a cold one —
      only fewer (or, pathologically, more) pivots. *)
  let solve_warm ?(cancel = Cancel.none) ?from ?max_dual_pivots (p : P.t)
      : warm_outcome =
    Obs.span "simplex.solve" (fun () ->
        let st = fresh_stats () in
        Obs.Metrics.incr m_solves;
        let warm_used = ref false and fell_back = ref false in
        let cold () = solve_cold p ~st ~cancel ~want_capture:true in
        let result, snapshot =
          match from with
          | None -> cold ()
          | Some s ->
            if not (compatible s p) then begin
              fell_back := true;
              cold ()
            end
            else begin
              let budget =
                match max_dual_pivots with
                | Some b -> b
                | None -> 64 + (4 * (Array.length s.s_rows + snapshot_extra_rows s p))
              in
              match warm_attempt s p ~st ~budget ~cancel with
              | Some (result, snap) ->
                warm_used := true;
                Obs.Metrics.incr m_warm_starts;
                (result, snap)
              | None ->
                fell_back := true;
                cold ()
            end
        in
        st.pivots <- st.phase1_pivots + st.phase2_pivots + st.dual_pivots;
        Obs.Metrics.add m_pivots st.pivots;
        if st.dual_pivots > 0 then Obs.Metrics.add m_dual_pivots st.dual_pivots;
        observe_phase_histograms st;
        Obs.add_attr "pivots" (Obs.Int st.pivots);
        if !warm_used then Obs.add_attr "warm" (Obs.Bool true);
        { result; stats = st; warm_used = !warm_used; fell_back = !fell_back;
          snapshot })
end
