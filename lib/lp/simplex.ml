(** Two-phase primal simplex over an arbitrary ordered field.

    The implementation is the classic dense full-tableau method with Bland's
    anti-cycling rule.  General variable bounds are removed up front by
    substitution (shifted, reflected or split into positive/negative parts),
    inequality rows gain slack/surplus columns, and phase 1 introduces
    artificial columns only for rows that lack a natural basic slack.

    Performance is adequate for DART's repair MILPs (hundreds of rows); the
    point of the functor is that instantiating with {!Field_rat} gives an
    exact solver with no feasibility tolerance at all. *)

module Obs = Dart_obs.Obs
module Cancel = Dart_resilience.Cancel

module Make (F : Field.S) = struct
  module P = Lp_problem.Make (F)

  type result =
    | Optimal of { objective : F.t; assignment : F.t array }
    | Infeasible
    | Unbounded

  (** Effort counters for one [solve] call (satellite of the dart_obs PR:
      solver work must be measurable, not silent). *)
  type stats = {
    mutable pivots : int;         (** total pivot operations, all phases *)
    mutable phase1_pivots : int;  (** pivots spent reaching feasibility *)
    mutable phase2_pivots : int;  (** pivots spent optimizing *)
  }

  let fresh_stats () = { pivots = 0; phase1_pivots = 0; phase2_pivots = 0 }

  let m_solves = Obs.Metrics.counter "lp.simplex.solves"
  let m_pivots = Obs.Metrics.counter "lp.simplex.pivots"

  (* How an original variable is represented over the non-negative standard
     variables. *)
  type encoding =
    | Shifted of int * F.t        (* x = u + lo *)
    | Reflected of int * F.t      (* x = hi - u *)
    | Split of int * int          (* x = u_pos - u_neg *)

  type tableau = {
    mutable rows : F.t array array; (* m rows, each of length ncols + 1 (rhs last) *)
    mutable basis : int array;      (* basic variable of each row *)
    obj : F.t array;                (* reduced-cost row, length ncols + 1 *)
    ncols : int;
    first_artificial : int;         (* columns >= this are artificial *)
  }

  let pivot t ~row ~col =
    let r = t.rows.(row) in
    let piv = r.(col) in
    let n = t.ncols in
    for j = 0 to n do
      if not (F.is_zero r.(j)) then r.(j) <- F.div r.(j) piv
    done;
    r.(col) <- F.one;
    let eliminate (other : F.t array) =
      let factor = other.(col) in
      if not (F.is_zero factor) then begin
        for j = 0 to n do
          if not (F.is_zero r.(j)) then other.(j) <- F.sub other.(j) (F.mul factor r.(j))
        done;
        other.(col) <- F.zero
      end
    in
    Array.iteri (fun i other -> if i <> row then eliminate other) t.rows;
    eliminate t.obj;
    t.basis.(row) <- col

  (* Bland's rule: entering = lowest-index column with negative reduced cost
     (artificials are never allowed to re-enter once phase 1 is done). *)
  let entering_column t ~allow_artificial =
    let limit = if allow_artificial then t.ncols else t.first_artificial in
    let rec go j =
      if j >= limit then None
      else if F.compare t.obj.(j) F.zero < 0 then Some j
      else go (j + 1)
    in
    go 0

  let leaving_row t ~col =
    let m = Array.length t.rows in
    let best = ref None in
    for i = 0 to m - 1 do
      let a = t.rows.(i).(col) in
      if F.compare a F.zero > 0 then begin
        let ratio = F.div t.rows.(i).(t.ncols) a in
        match !best with
        | None -> best := Some (i, ratio)
        | Some (bi, bratio) ->
          let c = F.compare ratio bratio in
          (* Tie-break on the basic variable index (Bland). *)
          if c < 0 || (c = 0 && t.basis.(i) < t.basis.(bi)) then best := Some (i, ratio)
      end
    done;
    Option.map fst !best

  type iterate_outcome = Finished | Unbounded_direction

  (* Cancellation is polled every 64 pivots: cheap enough to be free on
     the small LPs, frequent enough that a deadline aborts a pathological
     tableau within milliseconds. *)
  let cancel_poll_mask = 63

  let rec iterate t ~allow_artificial ~pivots ~cancel =
    match entering_column t ~allow_artificial with
    | None -> Finished
    | Some col ->
      (match leaving_row t ~col with
       | None -> Unbounded_direction
       | Some row ->
         pivot t ~row ~col;
         incr pivots;
         if !pivots land cancel_poll_mask = 0 then Cancel.check cancel;
         iterate t ~allow_artificial ~pivots ~cancel)

  (* Install a cost vector into the reduced-cost row and re-eliminate the
     basic columns so the row is expressed over nonbasic variables only. *)
  let install_costs t (costs : F.t array) =
    let n = t.ncols in
    for j = 0 to n do t.obj.(j) <- F.zero done;
    Array.iteri (fun j c -> t.obj.(j) <- c) costs;
    Array.iteri
      (fun i b ->
        let factor = t.obj.(b) in
        if not (F.is_zero factor) then begin
          let r = t.rows.(i) in
          for j = 0 to n do
            if not (F.is_zero r.(j)) then t.obj.(j) <- F.sub t.obj.(j) (F.mul factor r.(j))
          done;
          t.obj.(b) <- F.zero
        end)
      t.basis

  (* Current objective value: the rhs cell of the reduced-cost row holds -z. *)
  let objective_value t = F.neg t.obj.(t.ncols)

  (** Solve, also reporting the pivot effort.  The plain {!solve} below
      keeps the historical signature; branch & bound uses this one to
      attribute simplex work to nodes. *)
  let rec solve_stats_body ~cancel (p : P.t) : result * stats =
    let st = fresh_stats () in
    Obs.Metrics.incr m_solves;
    let nvars = P.num_vars p in
    let lowers = P.var_lowers p and uppers = P.var_uppers p in
    let infeasible_bounds =
      let rec go j =
        j < nvars
        && (match lowers.(j), uppers.(j) with
            | Some lo, Some hi when F.compare hi lo < 0 -> true
            | _ -> go (j + 1))
      in
      go 0
    in
    let result =
      if infeasible_bounds then Infeasible
      else solve_with_bounds p ~lowers ~uppers ~st ~cancel
    in
    st.pivots <- st.phase1_pivots + st.phase2_pivots;
    Obs.Metrics.add m_pivots st.pivots;
    (result, st)

  and solve_with_bounds (p : P.t) ~lowers ~uppers ~st ~cancel : result =
    let nvars = P.num_vars p in
    (* --- 1. encode variables over non-negative standard variables ------- *)
    let next = ref 0 in
    let fresh () = let v = !next in incr next; v in
    let extra_rows = ref [] in (* upper-bound rows u <= hi - lo *)
    let encodings =
      Array.init nvars (fun j ->
          match lowers.(j), uppers.(j) with
          | Some lo, Some hi ->
            let u = fresh () in
            extra_rows := (u, F.sub hi lo) :: !extra_rows;
            Shifted (u, lo)
          | Some lo, None -> Shifted (fresh (), lo)
          | None, Some hi -> Reflected (fresh (), hi)
          | None, None ->
            let up = fresh () in
            let un = fresh () in
            Split (up, un))
    in
    let encode_terms terms =
      (* Returns (std terms, rhs adjustment to subtract). *)
      let adjust = ref F.zero in
      let out = ref [] in
      List.iter
        (fun (c, v) ->
          match encodings.(v) with
          | Shifted (u, lo) ->
            out := (c, u) :: !out;
            adjust := F.add !adjust (F.mul c lo)
          | Reflected (u, hi) ->
            out := (F.neg c, u) :: !out;
            adjust := F.add !adjust (F.mul c hi)
          | Split (up, un) -> out := (c, up) :: (F.neg c, un) :: !out)
        terms;
      (!out, !adjust)
    in
    (* --- 2. build equality rows with slack columns ---------------------- *)
    let constrs = P.constraints p in
    let rows_spec = ref [] in (* (terms over std vars incl. slack, rhs) *)
    let slack_cols = ref [] in
    let add_row terms op rhs =
      match op with
      | Lp_problem.Eq -> rows_spec := (terms, rhs) :: !rows_spec
      | Lp_problem.Le ->
        let s = fresh () in
        slack_cols := s :: !slack_cols;
        rows_spec := ((F.one, s) :: terms, rhs) :: !rows_spec
      | Lp_problem.Ge ->
        let s = fresh () in
        slack_cols := s :: !slack_cols;
        rows_spec := ((F.neg F.one, s) :: terms, rhs) :: !rows_spec
    in
    Array.iter
      (fun (c : P.constr) ->
        let terms, adjust = encode_terms c.terms in
        add_row terms c.op (F.sub c.rhs adjust))
      constrs;
    List.iter (fun (u, cap) -> add_row [ (F.one, u) ] Lp_problem.Le cap) !extra_rows;
    let rows_spec = List.rev !rows_spec in
    begin
      let nstd = !next in
      let m = List.length rows_spec in
      (* --- 3. normalize rhs signs, pick basic columns, add artificials -- *)
      let dense = Array.make_matrix m (nstd + 1) F.zero in
      List.iteri
        (fun i (terms, rhs) ->
          List.iter (fun (c, v) -> dense.(i).(v) <- F.add dense.(i).(v) c) terms;
          dense.(i).(nstd) <- rhs)
        rows_spec;
      Array.iter
        (fun r ->
          if F.compare r.(nstd) F.zero < 0 then
            Array.iteri (fun j x -> r.(j) <- F.neg x) r)
        dense;
      (* A row can use its slack as the initial basic variable iff the slack
         coefficient survived as +1 after sign normalization. *)
      let slack_set = Array.make nstd false in
      List.iter (fun s -> slack_set.(s) <- true) !slack_cols;
      let basis0 = Array.make m (-1) in
      let needs_artificial = ref [] in
      Array.iteri
        (fun i r ->
          let found = ref (-1) in
          for j = 0 to nstd - 1 do
            if !found < 0 && slack_set.(j) && F.equal r.(j) F.one then begin
              (* Must be the only row touching this slack (always true: each
                 slack occurs in exactly one row). *)
              found := j
            end
          done;
          if !found >= 0 then basis0.(i) <- !found else needs_artificial := i :: !needs_artificial)
        dense;
      let nart = List.length !needs_artificial in
      let ncols = nstd + nart in
      let rows =
        Array.mapi
          (fun _ r ->
            let nr = Array.make (ncols + 1) F.zero in
            Array.blit r 0 nr 0 nstd;
            nr.(ncols) <- r.(nstd);
            nr)
          dense
      in
      List.iteri
        (fun k i ->
          let col = nstd + k in
          rows.(i).(col) <- F.one;
          basis0.(i) <- col)
        (List.rev !needs_artificial);
      let t =
        { rows; basis = basis0; obj = Array.make (ncols + 1) F.zero; ncols;
          first_artificial = nstd }
      in
      (* --- 4. phase 1 ----------------------------------------------------- *)
      let phase1_needed = nart > 0 in
      let feasible =
        if not phase1_needed then true
        else begin
          let costs = Array.make (ncols + 1) F.zero in
          for j = nstd to ncols - 1 do costs.(j) <- F.one done;
          install_costs t costs;
          let p1 = ref 0 in
          (match iterate t ~allow_artificial:true ~pivots:p1 ~cancel with
           | Unbounded_direction ->
             (* Phase-1 objective is bounded below by 0; cannot happen. *)
             assert false
           | Finished -> ());
          st.phase1_pivots <- st.phase1_pivots + !p1;
          F.is_zero (objective_value t)
        end
      in
      if not feasible then Infeasible
      else begin
        (* Drive surviving artificials out of the basis (they sit at 0). *)
        Array.iteri
          (fun i b ->
            if b >= nstd then begin
              let r = t.rows.(i) in
              let col = ref (-1) in
              for j = 0 to nstd - 1 do
                if !col < 0 && not (F.is_zero r.(j)) then col := j
              done;
              if !col >= 0 then begin
                pivot t ~row:i ~col:!col;
                st.phase1_pivots <- st.phase1_pivots + 1
              end
              (* else: redundant 0 = 0 row; the artificial stays basic at 0
                 and can never become positive because it cannot re-enter
                 elsewhere and its row rhs is 0. *)
            end)
          (Array.copy t.basis);
        (* --- 5. phase 2 --------------------------------------------------- *)
        let costs = Array.make (ncols + 1) F.zero in
        let sense = if P.minimize p then F.one else F.neg F.one in
        List.iter
          (fun (c, v) ->
            let c = F.mul sense c in
            match encodings.(v) with
            | Shifted (u, _) -> costs.(u) <- F.add costs.(u) c
            | Reflected (u, _) -> costs.(u) <- F.sub costs.(u) c
            | Split (up, un) ->
              costs.(up) <- F.add costs.(up) c;
              costs.(un) <- F.sub costs.(un) c)
          (P.objective p);
        install_costs t costs;
        let p2 = ref 0 in
        let outcome = iterate t ~allow_artificial:false ~pivots:p2 ~cancel in
        st.phase2_pivots <- st.phase2_pivots + !p2;
        match outcome with
        | Unbounded_direction -> Unbounded
        | Finished ->
          (* --- 6. read the solution back -------------------------------- *)
          let std = Array.make ncols F.zero in
          Array.iteri (fun i b -> std.(b) <- t.rows.(i).(ncols)) t.basis;
          let assignment =
            Array.init nvars (fun j ->
                match encodings.(j) with
                | Shifted (u, lo) -> F.add std.(u) lo
                | Reflected (u, hi) -> F.sub hi std.(u)
                | Split (up, un) -> F.sub std.(up) std.(un))
          in
          (* Objective constant part comes from the variable substitutions:
             recompute the true objective directly for robustness. *)
          let objective = P.eval_terms (P.objective p) assignment in
          Optimal { objective; assignment }
      end
    end

  let solve_stats ?(cancel = Cancel.none) (p : P.t) : result * stats =
    Obs.span "simplex.solve" (fun () ->
        let ((_, st) as r) = solve_stats_body ~cancel p in
        Obs.add_attr "pivots" (Obs.Int st.pivots);
        r)

  let solve ?cancel (p : P.t) : result = fst (solve_stats ?cancel p)
end
