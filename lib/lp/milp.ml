(** Mixed-integer linear programming by branch & bound on the simplex
    relaxation.

    Nodes are explored depth-first; at each node the variable whose
    relaxation value is most fractional (among those flagged integral) is
    branched on, taking the branch nearest the fractional value first so
    that incumbents appear early.  With [integral_objective:true] (the case
    for DART's card-minimality objective, which is a sum of binaries) the
    bound test is sharpened to [ceil(relaxation) >= incumbent].

    Branching is expressed as appended rows ([x <= floor] / [x >= ceil]) on
    one mutable working problem, pushed before recursing into a child and
    popped on the way out.  Appended rows leave the parent's columns and
    rows untouched, so each child re-solves warm from its parent's optimal
    basis ({!Simplex.Make.solve_warm}): a short dual-simplex phase instead
    of two cold phases.  A stalled dual phase falls back to a cold solve
    (counted in [warm_fallbacks]), so warm starts never change the answer. *)

module Obs = Dart_obs.Obs
module Cancel = Dart_resilience.Cancel

module Make (F : Field.S) = struct
  module P = Lp_problem.Make (F)
  module S = Simplex.Make (F)

  type status =
    | Optimal      (** incumbent proved optimal *)
    | Feasible     (** search truncated (node limit or cancellation);
                       incumbent best-so-far *)
    | Infeasible
    | Unbounded

  type outcome = {
    status : status;
    objective : F.t option;
    assignment : F.t array option;
    nodes_explored : int;
    simplex_pivots : int;  (** pivot work summed over all node relaxations *)
    dual_pivots : int;     (** of which dual pivots in warm restarts *)
    warm_starts : int;     (** nodes whose relaxation reused the parent basis *)
    warm_fallbacks : int;  (** nodes that fell back to a cold solve *)
    root_snapshot : S.snapshot option;
        (** basis of the root relaxation, for warm-starting a future solve
            of this problem extended by appended rows (e.g. the validation
            loop's next operator pin).  [None] when the root relaxation was
            not optimal or [warm] was off. *)
    cancelled : bool;      (** the search was aborted by a cancellation token;
                               [status]/[assignment] reflect the best incumbent
                               found before the abort *)
  }

  let m_nodes = Obs.Metrics.counter "milp.nodes"
  let m_incumbents = Obs.Metrics.counter "milp.incumbents"
  let m_prune_bound = Obs.Metrics.counter "milp.prune.bound"
  let m_prune_infeasible = Obs.Metrics.counter "milp.prune.infeasible"
  let m_prune_unbounded = Obs.Metrics.counter "milp.prune.unbounded"

  let min_compare a b = if F.compare a b <= 0 then a else b

  let solve ?(max_nodes = 1_000_000) ?(integral_objective = false)
      ?(cancel = Cancel.none) ?(warm = true) ?warm_from (p : P.t) : outcome =
    Obs.span "milp.solve"
      ~attrs:[ ("vars", Obs.Int (P.num_vars p)) ]
      (fun () ->
    let minimize = P.minimize p in
    let integers = P.var_integers p in
    let pivots = ref 0 in
    let dual_pivots = ref 0 in
    let warm_starts = ref 0 in
    let warm_fallbacks = ref 0 in
    let root_snapshot = ref None in
    (* One mutable working problem for the whole tree: an O(1) copy, so the
       caller's problem is never disturbed. *)
    let q = P.copy p in
    let relax ~from ~depth =
      if warm then begin
        let w = S.solve_warm ~cancel ?from q in
        pivots := !pivots + w.S.stats.S.pivots;
        dual_pivots := !dual_pivots + w.S.stats.S.dual_pivots;
        if w.S.warm_used then incr warm_starts;
        if w.S.fell_back then incr warm_fallbacks;
        if depth = 0 then root_snapshot := w.S.snapshot;
        (w.S.result, w.S.snapshot)
      end
      else begin
        let result, st = S.solve_stats ~cancel q in
        pivots := !pivots + st.S.pivots;
        (result, None)
      end
    in
    let incumbent = ref None in (* (objective, assignment) *)
    let better_than_incumbent obj =
      match !incumbent with
      | None -> true
      | Some (best, _) -> if minimize then F.compare obj best < 0 else F.compare obj best > 0
    in
    let bound_prunes obj =
      match !incumbent with
      | None -> false
      | Some (best, _) ->
        let obj = if integral_objective then (if minimize then F.ceil obj else F.floor obj) else obj in
        if minimize then F.compare obj best >= 0 else F.compare obj best <= 0
    in
    let most_fractional assignment =
      let best = ref None in (* (var, value, fractional distance to nearest int) *)
      Array.iteri
        (fun v is_int ->
          if is_int && not (F.is_integer assignment.(v)) then begin
            let x = assignment.(v) in
            let fl = F.floor x in
            let frac = F.sub x fl in
            (* distance to nearest integer = min(frac, 1 - frac) *)
            let d = min_compare frac (F.sub F.one frac) in
            match !best with
            | Some (_, _, bd) when F.compare d bd <= 0 -> ()
            | _ -> best := Some (v, x, d)
          end)
        integers;
      !best
    in
    let nodes = ref 0 in
    let truncated = ref false in
    let any_relaxation_unbounded = ref false in
    let root_infeasible = ref false in
    let rec explore ~from depth =
      if !nodes >= max_nodes then truncated := true
      else begin
        (* Node-entry cancellation point; {!Simplex} also polls inside
           long relaxations.  Raising here unwinds the whole DFS while
           the incumbent ref survives for anytime degradation. *)
        Cancel.check cancel;
        incr nodes;
        Obs.Metrics.incr m_nodes;
        if Obs.enabled () then
          Obs.log Debug "milp.node" ~attrs:[ ("depth", Obs.Int depth) ];
        match relax ~from ~depth with
        | S.Infeasible, _ ->
          Obs.Metrics.incr m_prune_infeasible;
          if depth = 0 then root_infeasible := true
        | S.Unbounded, _ ->
          (* An unbounded relaxation at the root means the MILP itself may be
             unbounded or infeasible; we report unbounded conservatively. *)
          Obs.Metrics.incr m_prune_unbounded;
          any_relaxation_unbounded := true
        | S.Optimal { objective; assignment }, snap ->
          if bound_prunes objective then Obs.Metrics.incr m_prune_bound
          else begin
            match most_fractional assignment with
            | None ->
              if better_than_incumbent objective then begin
                incumbent := Some (objective, assignment);
                Obs.Metrics.incr m_incumbents;
                if Obs.enabled () then
                  Obs.log Debug "milp.incumbent"
                    ~attrs:
                      [ ("objective", Obs.Str (F.to_string objective));
                        ("node", Obs.Int !nodes); ("depth", Obs.Int depth) ]
              end
            | Some (v, x, _) ->
              let fl = F.floor x and ce = F.ceil x in
              (* Push the branching row, recurse, pop it on the way out —
                 exception-safe so cancellation unwinds cleanly and the
                 working problem stays prefix-compatible with every live
                 ancestor snapshot. *)
              let branch op rhs =
                P.add_constraint ~label:"branch" q [ (F.one, v) ] op rhs;
                Fun.protect
                  ~finally:(fun () -> P.pop_constraint q)
                  (fun () -> explore ~from:snap (depth + 1))
              in
              let down () = branch Lp_problem.Le fl in
              let up () = branch Lp_problem.Ge ce in
              (* Explore the branch nearest the fractional value first. *)
              let frac = F.sub x fl in
              if F.compare frac (F.sub F.one frac) <= 0 then begin down (); up () end
              else begin up (); down () end
          end
      end
    in
    let cancelled = ref false in
    (try explore ~from:(if warm then warm_from else None) 0
     with Cancel.Cancelled -> cancelled := true);
    Obs.add_attr "nodes" (Obs.Int !nodes);
    Obs.add_attr "pivots" (Obs.Int !pivots);
    if !cancelled then Obs.add_attr "cancelled" (Obs.Bool true);
    let finish status objective assignment =
      { status; objective; assignment; nodes_explored = !nodes;
        simplex_pivots = !pivots; dual_pivots = !dual_pivots;
        warm_starts = !warm_starts; warm_fallbacks = !warm_fallbacks;
        root_snapshot = !root_snapshot; cancelled = !cancelled }
    in
    match !incumbent with
    | Some (objective, assignment) ->
      finish
        (if !truncated || !cancelled then Feasible else Optimal)
        (Some objective) (Some assignment)
    | None ->
      let status =
        if !any_relaxation_unbounded then Unbounded
        (* A cancelled search without an incumbent proved nothing: report
           Feasible-unknown, never Infeasible. *)
        else if !truncated || !cancelled then Feasible
        else Infeasible
      in
      finish status None None)
end
