(** Mixed-integer linear programming by branch & bound on the simplex
    relaxation.

    Nodes are explored depth-first; at each node the variable whose
    relaxation value is most fractional (among those flagged integral) is
    branched on, taking the branch nearest the fractional value first so
    that incumbents appear early.  With [integral_objective:true] (the case
    for DART's card-minimality objective, which is a sum of binaries) the
    bound test is sharpened to [ceil(relaxation) >= incumbent].

    Branching is expressed as appended rows ([x <= floor] / [x >= ceil]) on
    one mutable working problem, pushed before recursing into a child and
    popped on the way out.  Appended rows leave the parent's columns and
    rows untouched, so each child re-solves warm from its parent's optimal
    basis ({!Simplex.Make.solve_warm}): a short dual-simplex phase instead
    of two cold phases.  A stalled dual phase falls back to a cold solve
    (counted in [warm_fallbacks]), so warm starts never change the answer. *)

module Obs = Dart_obs.Obs
module Cancel = Dart_resilience.Cancel

(** One sampled branch-and-bound node, in float space (converted with
    [F.to_float] so the log is field-agnostic and cheap to serialize).
    Times are microseconds since the [solve] call started. *)
type node_event = {
  ne_t_us : float;            (** elapsed since solve start *)
  ne_node : int;              (** 1-based node number (exploration order) *)
  ne_depth : int;
  ne_open : int;              (** frontier size, this node excluded *)
  ne_incumbent : float option;(** incumbent objective when the node closed *)
  ne_bound : float;           (** this node's relaxation objective *)
  ne_gap : float option;      (** relative gap vs the root bound, when an
                                  incumbent exists *)
}

module Make (F : Field.S) = struct
  module P = Lp_problem.Make (F)
  module S = Simplex.Make (F)

  type status =
    | Optimal      (** incumbent proved optimal *)
    | Feasible     (** search truncated (node limit or cancellation);
                       incumbent best-so-far *)
    | Infeasible
    | Unbounded

  type outcome = {
    status : status;
    objective : F.t option;
    assignment : F.t array option;
    nodes_explored : int;
    simplex_pivots : int;  (** pivot work summed over all node relaxations *)
    dual_pivots : int;     (** of which dual pivots in warm restarts *)
    warm_starts : int;     (** nodes whose relaxation reused the parent basis *)
    warm_fallbacks : int;  (** nodes that fell back to a cold solve *)
    root_snapshot : S.snapshot option;
        (** basis of the root relaxation, for warm-starting a future solve
            of this problem extended by appended rows (e.g. the validation
            loop's next operator pin).  [None] when the root relaxation was
            not optimal or [warm] was off. *)
    cancelled : bool;      (** the search was aborted by a cancellation token;
                               [status]/[assignment] reflect the best incumbent
                               found before the abort *)
    phases : Obs.Phases.t;
        (** wall-clock attribution summed over every node relaxation
            (simplex ["phase1"]/["phase2"]/["dual"]/["snapshot"]) *)
    node_log : node_event list;
        (** bounded, decimated sample of the search (exploration order);
            incumbent-improving nodes are always offered with [force] so
            the convergence staircase survives decimation *)
    gap_timeline : (float * float) list;
        (** [(elapsed_us, relative gap)] — how the incumbent closed on the
            root bound over time.  Non-empty iff an incumbent was found.
            The last point is the final gap: [0.0] when proved optimal,
            the gap-at-abort when truncated or cancelled. *)
    root_bound : float option;
        (** the root relaxation objective (sharpened by integrality when
            [integral_objective]), the denominator-side bound of the gap *)
    final_gap : float option;
        (** relative gap at exit — [0.0] for a proved optimum, positive for
            a truncated/cancelled search with an incumbent, [None] with no
            incumbent *)
  }

  let m_nodes = Obs.Metrics.counter "milp.nodes"
  let m_incumbents = Obs.Metrics.counter "milp.incumbents"
  let m_prune_bound = Obs.Metrics.counter "milp.prune.bound"
  let m_prune_infeasible = Obs.Metrics.counter "milp.prune.infeasible"
  let m_prune_unbounded = Obs.Metrics.counter "milp.prune.unbounded"

  let min_compare a b = if F.compare a b <= 0 then a else b

  let solve ?(max_nodes = 1_000_000) ?(integral_objective = false)
      ?(cancel = Cancel.none) ?(warm = true) ?warm_from ?core (p : P.t)
      : outcome =
    Obs.span "milp.solve"
      ~attrs:[ ("vars", Obs.Int (P.num_vars p)) ]
      (fun () ->
    let minimize = P.minimize p in
    let integers = P.var_integers p in
    let pivots = ref 0 in
    let dual_pivots = ref 0 in
    let warm_starts = ref 0 in
    let warm_fallbacks = ref 0 in
    let root_snapshot = ref None in
    (* Convergence instrumentation: per-phase wall-clock merged up from
       every relaxation, a bounded node log, and the gap-over-time series.
       All of it is owned data (no sink required), so a caller asking for a
       solve report gets one even with observability off. *)
    let t0 = Obs.now_us () in
    let phases = Obs.Phases.create () in
    let gap_tl = Obs.Timeline.create () in
    let root_bound = ref None in   (* float; integrality-sharpened *)
    let open_count = ref 1 in      (* frontier size incl. the node in hand *)
    let nl_cap = 256 in
    let nl_buf = ref [] (* newest first *) in
    let nl_n = ref 0 and nl_stride = ref 1 and nl_seen = ref 0 in
    let nl_record ~force ev =
      let admit = force || !nl_seen mod !nl_stride = 0 in
      incr nl_seen;
      if admit then begin
        if !nl_n >= nl_cap then begin
          (* Same deterministic decimation as {!Obs.Timeline}: drop every
             other retained event (keeping the oldest of each pair) and
             double the admission stride. *)
          let kept = List.filteri (fun i _ -> i mod 2 = 0) (List.rev !nl_buf) in
          nl_buf := List.rev kept;
          nl_n := List.length kept;
          nl_stride := !nl_stride * 2
        end;
        nl_buf := ev :: !nl_buf;
        incr nl_n
      end
    in
    let rel_gap inc_f =
      match !root_bound with
      | None -> None
      | Some b ->
        let g = if minimize then inc_f -. b else b -. inc_f in
        Some (Float.max 0.0 (g /. Float.max 1.0 (Float.abs inc_f)))
    in
    (* One mutable working problem for the whole tree: an O(1) copy, so the
       caller's problem is never disturbed. *)
    let q = P.copy p in
    let relax ~from ~depth =
      if warm then begin
        let w = S.solve_warm ~cancel ?from ?core q in
        pivots := !pivots + w.S.stats.S.pivots;
        dual_pivots := !dual_pivots + w.S.stats.S.dual_pivots;
        Obs.Phases.merge_into ~dst:phases w.S.stats.S.phases;
        if w.S.warm_used then incr warm_starts;
        if w.S.fell_back then incr warm_fallbacks;
        if depth = 0 then root_snapshot := w.S.snapshot;
        (w.S.result, w.S.snapshot)
      end
      else begin
        let result, st = S.solve_stats ~cancel ?core q in
        pivots := !pivots + st.S.pivots;
        Obs.Phases.merge_into ~dst:phases st.S.phases;
        (result, None)
      end
    in
    let incumbent = ref None in (* (objective, assignment) *)
    let better_than_incumbent obj =
      match !incumbent with
      | None -> true
      | Some (best, _) -> if minimize then F.compare obj best < 0 else F.compare obj best > 0
    in
    let bound_prunes obj =
      match !incumbent with
      | None -> false
      | Some (best, _) ->
        let obj = if integral_objective then (if minimize then F.ceil obj else F.floor obj) else obj in
        if minimize then F.compare obj best >= 0 else F.compare obj best <= 0
    in
    let most_fractional assignment =
      let best = ref None in (* (var, value, fractional distance to nearest int) *)
      Array.iteri
        (fun v is_int ->
          if is_int && not (F.is_integer assignment.(v)) then begin
            let x = assignment.(v) in
            let fl = F.floor x in
            let frac = F.sub x fl in
            (* distance to nearest integer = min(frac, 1 - frac) *)
            let d = min_compare frac (F.sub F.one frac) in
            match !best with
            | Some (_, _, bd) when F.compare d bd <= 0 -> ()
            | _ -> best := Some (v, x, d)
          end)
        integers;
      !best
    in
    let nodes = ref 0 in
    let truncated = ref false in
    let any_relaxation_unbounded = ref false in
    let root_infeasible = ref false in
    let rec explore ~from depth =
      if !nodes >= max_nodes then truncated := true
      else begin
        (* Node-entry cancellation point; {!Simplex} also polls inside
           long relaxations.  Raising here unwinds the whole DFS while
           the incumbent ref survives for anytime degradation. *)
        Cancel.check cancel;
        incr nodes;
        open_count := !open_count - 1;
        Obs.Metrics.incr m_nodes;
        if Obs.enabled () then
          Obs.log Debug "milp.node" ~attrs:[ ("depth", Obs.Int depth) ];
        match relax ~from ~depth with
        | S.Infeasible, _ ->
          Obs.Metrics.incr m_prune_infeasible;
          if depth = 0 then root_infeasible := true
        | S.Unbounded, _ ->
          (* An unbounded relaxation at the root means the MILP itself may be
             unbounded or infeasible; we report unbounded conservatively. *)
          Obs.Metrics.incr m_prune_unbounded;
          any_relaxation_unbounded := true
        | S.Optimal { objective; assignment }, snap ->
          if depth = 0 then begin
            (* The root relaxation is the global dual bound of the whole
               search (DFS never revisits it); with an integral objective it
               sharpens to the next integer. *)
            let sharp =
              if integral_objective then
                if minimize then F.ceil objective else F.floor objective
              else objective
            in
            root_bound := Some (F.to_float sharp)
          end;
          let pruned = bound_prunes objective in
          let frac = if pruned then None else most_fractional assignment in
          let improved = ref false in
          if pruned then Obs.Metrics.incr m_prune_bound
          else begin
            match frac with
            | None ->
              if better_than_incumbent objective then begin
                incumbent := Some (objective, assignment);
                improved := true;
                Obs.Metrics.incr m_incumbents;
                if Obs.enabled () then
                  Obs.log Debug "milp.incumbent"
                    ~attrs:
                      [ ("objective", Obs.Str (F.to_string objective));
                        ("node", Obs.Int !nodes); ("depth", Obs.Int depth) ]
              end
            | Some _ -> ()
          end;
          let inc_f = Option.map (fun (o, _) -> F.to_float o) !incumbent in
          let gap = Option.bind inc_f rel_gap in
          let el = Float.max 0.0 (Obs.now_us () -. t0) in
          nl_record ~force:!improved
            { ne_t_us = el; ne_node = !nodes; ne_depth = depth;
              ne_open = !open_count; ne_incumbent = inc_f;
              ne_bound = F.to_float objective; ne_gap = gap };
          (match gap with
           | Some g -> Obs.Timeline.record gap_tl ~elapsed_us:el ~force:!improved g
           | None -> ());
          (match frac with
           | None -> ()
           | Some (v, x, _) ->
             let fl = F.floor x and ce = F.ceil x in
             (* Push the branching row, recurse, pop it on the way out —
                exception-safe so cancellation unwinds cleanly and the
                working problem stays prefix-compatible with every live
                ancestor snapshot. *)
             let branch op rhs =
               P.add_constraint ~label:"branch" q [ (F.one, v) ] op rhs;
               Fun.protect
                 ~finally:(fun () -> P.pop_constraint q)
                 (fun () -> explore ~from:snap (depth + 1))
             in
             let down () = branch Lp_problem.Le fl in
             let up () = branch Lp_problem.Ge ce in
             open_count := !open_count + 2;
             (* Explore the branch nearest the fractional value first. *)
             let frac = F.sub x fl in
             if F.compare frac (F.sub F.one frac) <= 0 then begin down (); up () end
             else begin up (); down () end)
      end
    in
    let cancelled = ref false in
    (try explore ~from:(if warm then warm_from else None) 0
     with Cancel.Cancelled -> cancelled := true);
    Obs.add_attr "nodes" (Obs.Int !nodes);
    Obs.add_attr "pivots" (Obs.Int !pivots);
    if !cancelled then Obs.add_attr "cancelled" (Obs.Bool true);
    let finish status objective assignment =
      let final_gap =
        match status, Option.map (fun (o, _) -> F.to_float o) !incumbent with
        | Optimal, Some _ ->
          (* Proved by exhausting the tree, whatever the root bound says. *)
          Some 0.0
        | _, Some inc_f -> rel_gap inc_f
        | _, None -> None
      in
      (match final_gap with
       | Some g ->
         (* Close the series with the gap-at-exit (gap-at-abort for a
            truncated or cancelled search). *)
         Obs.Timeline.record gap_tl ~force:true g
       | None -> ());
      { status; objective; assignment; nodes_explored = !nodes;
        simplex_pivots = !pivots; dual_pivots = !dual_pivots;
        warm_starts = !warm_starts; warm_fallbacks = !warm_fallbacks;
        root_snapshot = !root_snapshot; cancelled = !cancelled;
        phases; node_log = List.rev !nl_buf;
        gap_timeline = Obs.Timeline.points gap_tl;
        root_bound = !root_bound; final_gap }
    in
    match !incumbent with
    | Some (objective, assignment) ->
      finish
        (if !truncated || !cancelled then Feasible else Optimal)
        (Some objective) (Some assignment)
    | None ->
      let status =
        if !any_relaxation_unbounded then Unbounded
        (* A cancelled search without an incumbent proved nothing: report
           Feasible-unknown, never Infeasible. *)
        else if !truncated || !cancelled then Feasible
        else Infeasible
      in
      finish status None None)
end
