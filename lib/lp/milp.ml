(** Mixed-integer linear programming by branch & bound on the simplex
    relaxation.

    Nodes are explored depth-first; at each node the variable whose
    relaxation value is most fractional (among those flagged integral) is
    branched on, taking the branch nearest the fractional value first so
    that incumbents appear early.  With [integral_objective:true] (the case
    for DART's card-minimality objective, which is a sum of binaries) the
    bound test is sharpened to [ceil(relaxation) >= incumbent]. *)

module Obs = Dart_obs.Obs
module Cancel = Dart_resilience.Cancel

module Make (F : Field.S) = struct
  module P = Lp_problem.Make (F)
  module S = Simplex.Make (F)

  type status =
    | Optimal      (** incumbent proved optimal *)
    | Feasible     (** search truncated (node limit or cancellation);
                       incumbent best-so-far *)
    | Infeasible
    | Unbounded

  type outcome = {
    status : status;
    objective : F.t option;
    assignment : F.t array option;
    nodes_explored : int;
    simplex_pivots : int;  (** pivot work summed over all node relaxations *)
    cancelled : bool;      (** the search was aborted by a cancellation token;
                               [status]/[assignment] reflect the best incumbent
                               found before the abort *)
  }

  let m_nodes = Obs.Metrics.counter "milp.nodes"
  let m_incumbents = Obs.Metrics.counter "milp.incumbents"
  let m_prune_bound = Obs.Metrics.counter "milp.prune.bound"
  let m_prune_infeasible = Obs.Metrics.counter "milp.prune.infeasible"
  let m_prune_unbounded = Obs.Metrics.counter "milp.prune.unbounded"

  let max_compare a b = if F.compare a b >= 0 then a else b
  let min_compare a b = if F.compare a b <= 0 then a else b

  let solve ?(max_nodes = 1_000_000) ?(integral_objective = false)
      ?(cancel = Cancel.none) (p : P.t) : outcome =
    Obs.span "milp.solve"
      ~attrs:[ ("vars", Obs.Int (P.num_vars p)) ]
      (fun () ->
    let minimize = P.minimize p in
    let integers = P.var_integers p in
    let base_lo = P.var_lowers p and base_hi = P.var_uppers p in
    let nvars = P.num_vars p in
    let pivots = ref 0 in
    (* Fresh problem with overridden bounds, sharing constraint structure. *)
    let relax lo hi =
      let q = P.create () in
      let names = P.var_names p in
      for v = 0 to nvars - 1 do
        ignore (P.add_var ~name:names.(v) ?lower:lo.(v) ?upper:hi.(v) q)
      done;
      Array.iter (fun (c : P.constr) -> P.add_constraint ~label:c.label q c.terms c.op c.rhs)
        (P.constraints p);
      P.set_objective ~minimize q (P.objective p);
      let result, st = S.solve_stats ~cancel q in
      pivots := !pivots + st.S.pivots;
      result
    in
    let incumbent = ref None in (* (objective, assignment) *)
    let better_than_incumbent obj =
      match !incumbent with
      | None -> true
      | Some (best, _) -> if minimize then F.compare obj best < 0 else F.compare obj best > 0
    in
    let bound_prunes obj =
      match !incumbent with
      | None -> false
      | Some (best, _) ->
        let obj = if integral_objective then (if minimize then F.ceil obj else F.floor obj) else obj in
        if minimize then F.compare obj best >= 0 else F.compare obj best <= 0
    in
    let most_fractional assignment =
      let best = ref None in (* (var, value, fractional distance to nearest int) *)
      Array.iteri
        (fun v is_int ->
          if is_int && not (F.is_integer assignment.(v)) then begin
            let x = assignment.(v) in
            let fl = F.floor x in
            let frac = F.sub x fl in
            (* distance to nearest integer = min(frac, 1 - frac) *)
            let d = min_compare frac (F.sub F.one frac) in
            match !best with
            | Some (_, _, bd) when F.compare d bd <= 0 -> ()
            | _ -> best := Some (v, x, d)
          end)
        integers;
      !best
    in
    let nodes = ref 0 in
    let truncated = ref false in
    let any_relaxation_unbounded = ref false in
    let root_infeasible = ref false in
    let rec explore lo hi depth =
      if !nodes >= max_nodes then truncated := true
      else begin
        (* Node-entry cancellation point; {!Simplex} also polls inside
           long relaxations.  Raising here unwinds the whole DFS while
           the incumbent ref survives for anytime degradation. *)
        Cancel.check cancel;
        incr nodes;
        Obs.Metrics.incr m_nodes;
        if Obs.enabled () then
          Obs.log Debug "milp.node" ~attrs:[ ("depth", Obs.Int depth) ];
        match relax lo hi with
        | S.Infeasible ->
          Obs.Metrics.incr m_prune_infeasible;
          if depth = 0 then root_infeasible := true
        | S.Unbounded ->
          (* An unbounded relaxation at the root means the MILP itself may be
             unbounded or infeasible; we report unbounded conservatively. *)
          Obs.Metrics.incr m_prune_unbounded;
          any_relaxation_unbounded := true
        | S.Optimal { objective; assignment } ->
          if bound_prunes objective then Obs.Metrics.incr m_prune_bound
          else begin
            match most_fractional assignment with
            | None ->
              if better_than_incumbent objective then begin
                incumbent := Some (objective, assignment);
                Obs.Metrics.incr m_incumbents;
                if Obs.enabled () then
                  Obs.log Debug "milp.incumbent"
                    ~attrs:
                      [ ("objective", Obs.Str (F.to_string objective));
                        ("node", Obs.Int !nodes); ("depth", Obs.Int depth) ]
              end
            | Some (v, x, _) ->
              let fl = F.floor x and ce = F.ceil x in
              let down () =
                let hi' = Array.copy hi in
                hi' .(v) <- Some (match hi.(v) with None -> fl | Some h -> min_compare h fl);
                explore lo hi' (depth + 1)
              in
              let up () =
                let lo' = Array.copy lo in
                lo' .(v) <- Some (match lo.(v) with None -> ce | Some l -> max_compare l ce);
                explore lo' hi (depth + 1)
              in
              (* Explore the branch nearest the fractional value first. *)
              let frac = F.sub x fl in
              if F.compare frac (F.sub F.one frac) <= 0 then begin down (); up () end
              else begin up (); down () end
          end
      end
    in
    let cancelled = ref false in
    (try explore (Array.copy base_lo) (Array.copy base_hi) 0
     with Cancel.Cancelled -> cancelled := true);
    Obs.add_attr "nodes" (Obs.Int !nodes);
    Obs.add_attr "pivots" (Obs.Int !pivots);
    if !cancelled then Obs.add_attr "cancelled" (Obs.Bool true);
    match !incumbent with
    | Some (objective, assignment) ->
      { status = (if !truncated || !cancelled then Feasible else Optimal);
        objective = Some objective; assignment = Some assignment;
        nodes_explored = !nodes; simplex_pivots = !pivots;
        cancelled = !cancelled }
    | None ->
      let status =
        if !any_relaxation_unbounded then Unbounded
        (* A cancelled search without an incumbent proved nothing: report
           Feasible-unknown, never Infeasible. *)
        else if !truncated || !cancelled then Feasible
        else Infeasible
      in
      { status; objective = None; assignment = None; nodes_explored = !nodes;
        simplex_pivots = !pivots; cancelled = !cancelled })
end
