(* Sharded append-only WAL; see wal.mli. *)

module Obs = Dart_obs.Obs
module Json = Obs.Json

let default_shards = 4

let m_appends = Obs.Metrics.counter "durable.wal_appends"
let m_bytes = Obs.Metrics.counter "durable.wal_bytes"
let m_skipped = Obs.Metrics.counter "durable.wal_skipped_records"
let m_errors = Obs.Metrics.counter "durable.wal_errors"

exception Append_failed of string

type shard_state = {
  mutable oc : out_channel option; (* opened lazily, append mode *)
  mutable count : int;             (* appends since open/truncate *)
}

type t = {
  dir : string;
  nshards : int;
  states : shard_state array;
  mu : Mutex.t;
}

let dir t = t.dir
let shards t = t.nshards

let segment_path dir shard = Filename.concat dir (Printf.sprintf "wal-%02d.log" shard)
let meta_path dir = Filename.concat dir "wal.meta"

let mkdir_p dir =
  (* One level is enough for data dirs like /tmp/x; create the parent too
     so `--data-dir a/b` works out of the box. *)
  let rec make d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      make (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  make dir

let meta_shards dir =
  match open_in_bin (meta_path dir) with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
      (fun () ->
        match input_line ic with
        | line -> int_of_string_opt (String.trim line)
        | exception End_of_file -> None)

let create ?(shards = default_shards) dir =
  if shards < 1 then invalid_arg "Wal.create: shards must be >= 1";
  mkdir_p dir;
  let nshards =
    match meta_shards dir with
    | Some n when n >= 1 -> n  (* the directory's layout wins *)
    | _ ->
      let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 (meta_path dir) in
      output_string oc (string_of_int shards);
      output_char oc '\n';
      close_out oc;
      shards
  in
  { dir; nshards;
    states = Array.init nshards (fun _ -> { oc = None; count = 0 });
    mu = Mutex.create () }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* FNV-1a 64-bit, stable across processes (unlike Hashtbl.hash). *)
let fnv1a s =
  let h = ref (-0x340d631b7bdddcdb) (* 0xcbf29ce484222325 as an OCaml int *) in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h

let shard_of t key = abs (fnv1a key) mod t.nshards

let shard_oc t shard =
  let st = t.states.(shard) in
  match st.oc with
  | Some oc -> oc
  | None ->
    let oc =
      open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644
        (segment_path t.dir shard)
    in
    st.oc <- Some oc;
    oc

let append t ~key event =
  let payload = Json.to_string event in
  locked t (fun () ->
      let shard = shard_of t key in
      match
        let oc = shard_oc t shard in
        Codec.write_record oc payload
      with
      | () ->
        t.states.(shard).count <- t.states.(shard).count + 1;
        Obs.Metrics.incr m_appends;
        Obs.Metrics.add m_bytes (Codec.record_bytes payload)
      | exception ((Sys_error _ | Unix.Unix_error _) as e) ->
        (* ENOSPC/EIO at write or flush time.  The shard channel may hold
           a partial record in its buffer; drop the channel so the next
           append reopens cleanly (replay tolerates a damaged tail).  The
           caller gets a typed failure to convert into a retryable
           error — never a crash, never a silent drop. *)
        let cause =
          match e with
          | Sys_error msg -> msg
          | Unix.Unix_error (err, fn, _) ->
            Printf.sprintf "%s: %s" fn (Unix.error_message err)
          | _ -> Printexc.to_string e
        in
        Obs.Metrics.incr m_errors;
        (match t.states.(shard).oc with
         | Some oc ->
           t.states.(shard).oc <- None;
           (try close_out_noerr oc with _ -> ())
         | None -> ());
        raise (Append_failed (Printf.sprintf "wal shard %d: %s" shard cause)))

let appended t shard = locked t (fun () -> t.states.(shard).count)

let truncate_shard t shard =
  locked t (fun () ->
      let st = t.states.(shard) in
      (match st.oc with
       | Some oc ->
         st.oc <- None;
         (try close_out oc with Sys_error _ -> ())
       | None -> ());
      (try Sys.remove (segment_path t.dir shard) with Sys_error _ -> ());
      st.count <- 0)

let close t =
  locked t (fun () ->
      Array.iter
        (fun st ->
          match st.oc with
          | Some oc ->
            st.oc <- None;
            (try flush oc; close_out oc with Sys_error _ -> ())
          | None -> ())
        t.states)

type replayed = {
  events : Json.t list;
  skipped : int;
  damage : string option;
}

let replay_shard ~dir ~shard =
  let path = segment_path dir shard in
  if not (Sys.file_exists path) then { events = []; skipped = 0; damage = None }
  else
    match Codec.read_file path with
    | Error msg -> { events = []; skipped = 0; damage = Some msg }
    | Ok (payloads, tail) ->
      (* A payload that frames correctly but no longer parses as JSON is
         treated like tail damage: drop it and everything after it (later
         events may depend on the dropped one). *)
      let rec parse acc skipped = function
        | [] -> (List.rev acc, skipped, None)
        | p :: rest -> (
          match Json.of_string p with
          | Ok j -> parse (j :: acc) skipped rest
          | Error msg ->
            (List.rev acc, skipped + 1 + List.length rest,
             Some ("unparseable record: " ^ msg)))
      in
      let events, skipped, parse_damage = parse [] 0 payloads in
      let damage =
        match (parse_damage, tail) with
        | Some d, _ -> Some d
        | None, Codec.Clean -> None
        | None, t -> Some (Codec.tail_to_string t)
      in
      if skipped > 0 then Obs.Metrics.add m_skipped skipped;
      (match damage with
       | Some why ->
         Obs.Metrics.incr m_skipped;
         Obs.log Obs.Warn "durable.wal_damaged_tail"
           ~attrs:[ ("shard", Obs.Int shard); ("why", Obs.Str why) ]
       | None -> ());
      { events; skipped; damage }
