(** Checksummed record framing for durable files (WAL segments and
    snapshots).

    A record on disk is

    {v  magic "DRT1" (4 bytes) | payload length (4 bytes, big-endian)
        | CRC-32 of the payload (4 bytes, big-endian) | payload  v}

    so a reader can detect both {e truncation} (the file ends inside a
    header or payload — the normal shape after a [kill -9] mid-append)
    and {e corruption} (bit rot, a torn sector, garbage appended by
    another process).  Reads are prefix-tolerant: every record up to the
    first bad one is returned, together with a {!tail} describing what
    stopped the scan, and recovery proceeds from the last good record. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3 polynomial, the zlib/PNG one) of a string. *)

val header_bytes : int
(** Size of the per-record header (magic + length + checksum). *)

val record_bytes : string -> int
(** Total on-disk size of a record carrying this payload. *)

val write_record : out_channel -> string -> unit
(** Append one framed record and flush the channel (the bytes reach the
    OS, so they survive a process crash; media-level durability would
    additionally need fsync). *)

(** Why a scan stopped before end-of-file. *)
type tail =
  | Clean                          (** the file ends exactly on a record
                                       boundary *)
  | Truncated of int               (** the file ends mid-record; carries
                                       the byte offset of the partial
                                       record *)
  | Corrupt of int * string        (** a record at this byte offset is
                                       damaged (bad magic, absurd length
                                       or checksum mismatch); carries a
                                       reason *)

val tail_to_string : tail -> string

val read_records : in_channel -> string list * tail
(** Scan a channel from its current position: every well-formed record's
    payload in file order, plus how the scan ended.  Anything after the
    first bad record is ignored (an append-only log cannot be
    resynchronized past damage). *)

val read_file : string -> (string list * tail, string) result
(** {!read_records} on a whole file; [Error] when the file cannot be
    opened. *)
