(** Sharded append-only write-ahead log of JSON events.

    Events are routed to one of [shards] segment files
    ([DIR/wal-NN.log]) by a stable hash of their key (a session id), so
    independent keys never contend on one file and a future multi-process
    deployment can split shards across servers.  Appends are
    {!Codec}-framed and flushed, so everything appended before a crash is
    recovered; replay is deterministic (same files ⇒ same events in the
    same order) and tolerates a damaged tail by skipping it with a
    warning (see {!Codec.tail}).

    The WAL itself is schema-agnostic: callers append any JSON value and
    fold replayed events themselves (the server's session schema lives in
    [Dart_server.Persist]). *)

module Json = Dart_obs.Obs.Json

type t

val default_shards : int

val create : ?shards:int -> string -> t
(** Open (creating as needed) the log rooted at a directory.  [shards]
    must match across runs of the same directory; {!create} persists it
    in [DIR/wal.meta] and an existing meta wins over the argument. *)

val dir : t -> string
val shards : t -> int

val shard_of : t -> string -> int
(** The shard a key routes to (stable across processes: FNV-1a). *)

exception Append_failed of string
(** An append hit a disk error (ENOSPC, EIO, ...).  The record was not
    durably written; [durable.wal_errors] was incremented and the shard
    channel reset so later appends reopen cleanly.  Callers should
    surface a retryable error to the request that needed the append. *)

val append : t -> key:string -> Json.t -> unit
(** Append one event to the key's shard and flush it.
    @raise Append_failed on a disk error (the server maps this to a
    retryable response, never a crash). *)

val appended : t -> int -> int
(** Events appended to a shard by this handle since it was opened or
    since the shard's last {!truncate_shard} — the snapshot-cadence
    counter. *)

val truncate_shard : t -> int -> unit
(** Drop a shard's segment (called right after its state was captured in
    a snapshot) and reset its {!appended} count. *)

val close : t -> unit

(** One replayed shard: events in append order, plus the damage report
    for the segment's tail ([None] when the scan was clean). *)
type replayed = {
  events : Json.t list;
  skipped : int;          (** trailing records dropped: unparseable JSON *)
  damage : string option; (** tail truncation/corruption, human-readable *)
}

val replay_shard : dir:string -> shard:int -> replayed
(** Read one shard's segment from disk (missing file = no events). *)

val meta_shards : string -> int option
(** The shard count recorded in an existing log directory, if any. *)
