(* Atomic per-shard snapshots; see snapshot.mli. *)

module Obs = Dart_obs.Obs
module Json = Obs.Json

let m_snapshots = Obs.Metrics.counter "durable.snapshots"

let path ~dir ~shard = Filename.concat dir (Printf.sprintf "snap-%02d.snap" shard)

let save ~dir ~shard json =
  let final = path ~dir ~shard in
  let tmp = final ^ ".tmp" in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 tmp in
  (try Codec.write_record oc (Json.to_string json)
   with e ->
     (try close_out oc with Sys_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp final;
  Obs.Metrics.incr m_snapshots

let load ~dir ~shard =
  let file = path ~dir ~shard in
  if not (Sys.file_exists file) then None
  else
    let damaged why =
      Obs.log Obs.Warn "durable.snapshot_damaged"
        ~attrs:[ ("shard", Obs.Int shard); ("why", Obs.Str why) ];
      None
    in
    match Codec.read_file file with
    | Error msg -> damaged msg
    | Ok ([ payload ], Codec.Clean) -> (
      match Json.of_string payload with
      | Ok j -> Some j
      | Error msg -> damaged ("unparseable: " ^ msg))
    | Ok (_, tail) -> damaged (Codec.tail_to_string tail)
