(* Checksummed record framing: see codec.mli for the on-disk format. *)

let magic = "DRT1"
let header_bytes = 12 (* magic 4 + length 4 + crc 4 *)

(* Practical per-record ceiling: a length above this is treated as
   corruption rather than an allocation request.  Documents travel inside
   WAL records, so the bound is generous. *)
let max_record_bytes = 256 * 1024 * 1024

let record_bytes payload = header_bytes + String.length payload

(* CRC-32, IEEE 802.3 reflected polynomial 0xEDB88320, table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let write_record oc payload =
  let n = String.length payload in
  let hdr = Bytes.create header_bytes in
  Bytes.blit_string magic 0 hdr 0 4;
  Bytes.set_int32_be hdr 4 (Int32.of_int n);
  Bytes.set_int32_be hdr 8 (crc32 payload);
  output_bytes oc hdr;
  output_string oc payload;
  flush oc

type tail =
  | Clean
  | Truncated of int
  | Corrupt of int * string

let tail_to_string = function
  | Clean -> "clean"
  | Truncated off -> Printf.sprintf "truncated at byte %d" off
  | Corrupt (off, why) -> Printf.sprintf "corrupt at byte %d (%s)" off why

(* Read exactly [n] bytes; [None] when the channel ends first. *)
let really_read ic n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Some (Bytes.unsafe_to_string buf)
    else
      let k = input ic buf off (n - off) in
      if k = 0 then None else go (off + k)
  in
  go 0

let read_records ic =
  let rec go acc offset =
    match really_read ic header_bytes with
    | None ->
      (* Between 1 and header_bytes-1 leftover bytes is a torn header;
         exactly 0 is a clean end.  [really_read] cannot tell them apart,
         so probe: if we are at EOF with nothing consumed, it is clean. *)
      let here = pos_in ic in
      if here = offset then (List.rev acc, Clean)
      else (List.rev acc, Truncated offset)
    | Some hdr ->
      if String.sub hdr 0 4 <> magic then
        (List.rev acc, Corrupt (offset, "bad magic"))
      else begin
        let len = Int32.to_int (String.get_int32_be hdr 4) in
        if len < 0 || len > max_record_bytes then
          (List.rev acc, Corrupt (offset, Printf.sprintf "absurd length %d" len))
        else
          match really_read ic len with
          | None -> (List.rev acc, Truncated offset)
          | Some payload ->
            let want = String.get_int32_be hdr 8 in
            if crc32 payload <> want then
              (List.rev acc, Corrupt (offset, "checksum mismatch"))
            else go (payload :: acc) (offset + header_bytes + len)
      end
  in
  let start = pos_in ic in
  go [] start

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
      (fun () -> Ok (read_records ic))
