(** Atomic per-shard snapshots.

    A snapshot is one {!Codec}-framed JSON value in [DIR/snap-NN.snap],
    written to a temporary file and [rename]d into place so a reader (or
    a crash) never observes a half-written snapshot.  Together with
    {!Wal.truncate_shard} this compacts a shard's history: recovery loads
    the snapshot first, then replays whatever the WAL accumulated after
    it. *)

module Json = Dart_obs.Obs.Json

val path : dir:string -> shard:int -> string

val save : dir:string -> shard:int -> Json.t -> unit
(** Atomically replace the shard's snapshot. *)

val load : dir:string -> shard:int -> Json.t option
(** [None] when there is no snapshot, or when the file is damaged
    (logged as a warning — recovery then falls back to the WAL alone). *)
