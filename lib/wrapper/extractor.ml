(** The wrapping sub-module: HTML document → row pattern instances.

    Tables are located in the parsed document, expanded into logical grids
    (so multi-row/multi-column cells reach every row they are adjacent to,
    as in Example 13), and each logical row is matched against the row
    patterns.  Rows that match no pattern (captions, headers, separators)
    are reported, not silently dropped. *)

open Dart_html
module Obs = Dart_obs.Obs

let m_rows_matched = Obs.Metrics.counter "wrapper.rows_matched"
let m_rows_unmatched = Obs.Metrics.counter "wrapper.rows_unmatched"
let m_cell_repairs = Obs.Metrics.counter "wrapper.cell_repairs"

type row_report = {
  table_index : int;
  row_index : int;
  texts : string list;
  outcome : outcome;
}

and outcome =
  | Matched of Matcher.instance
  | Unmatched

type result = {
  instances : Matcher.instance list; (** in document order *)
  reports : row_report list;         (** one per logical row *)
}

let match_table meta ~table_index (table : Table.t) : row_report list =
  List.init (Table.num_rows table) (fun r ->
      let texts = Table.row_texts table r in
      let outcome =
        match Matcher.best_instance meta texts with
        | Some inst -> Matched inst
        | None -> Unmatched
      in
      { table_index; row_index = r; texts; outcome })

(** Cells the matcher silently repaired while binding: the lexical
    msi-correction of a misread label, or numeric separator cleanup.  This
    is the first repair layer of the pipeline (before the MILP), so its
    volume is worth tracking. *)
let repaired_cells (inst : Matcher.instance) =
  Array.fold_left
    (fun acc (c : Matcher.instance_cell) ->
      if c.Matcher.bound <> String.trim c.Matcher.raw then acc + 1 else acc)
    0 inst.Matcher.cells

(** Run the wrapper over every table of an HTML document. *)
let extract meta (html : string) : result =
  let tables = Table.of_html html in
  let reports =
    List.concat (List.mapi (fun i t -> match_table meta ~table_index:i t) tables)
  in
  let instances =
    List.filter_map
      (fun r -> match r.outcome with Matched i -> Some i | Unmatched -> None)
      reports
  in
  Obs.Metrics.add m_rows_matched (List.length instances);
  Obs.Metrics.add m_rows_unmatched (List.length reports - List.length instances);
  List.iter
    (fun inst ->
      let repaired = repaired_cells inst in
      if repaired > 0 then begin
        Obs.Metrics.add m_cell_repairs repaired;
        if Obs.enabled () then
          Obs.log Debug "wrapper.lexical_repair"
            ~attrs:[ ("cells", Obs.Int repaired) ]
      end)
    instances;
  { instances; reports }

(** Fraction of logical rows that matched some pattern. *)
let match_rate result =
  let total = List.length result.reports in
  if total = 0 then 0.0
  else float_of_int (List.length result.instances) /. float_of_int total

(** Mean row score over matched rows (1.0 = every cell matched exactly). *)
let mean_score result =
  match result.instances with
  | [] -> 0.0
  | insts ->
    List.fold_left (fun acc i -> acc +. i.Matcher.row_score) 0.0 insts
    /. float_of_int (List.length insts)
