(** Subsystem health checks behind [/healthz] and [/readyz].

    Each subsystem registers one named check — a thunk answering
    {!Ok}, {!Degraded} (serving, but worth a look) or {!Failing}
    (rotate this replica out).  The registry is process-wide, like
    {!Obs.Metrics}: re-registering a name replaces its check, so a
    restarting subsystem simply registers again.  Checks must be cheap
    and non-blocking — they run inline on every readiness probe.

    Aggregation is by worst status; only {!Failing} checks are
    {e culprits} (a degraded replica still takes traffic). *)

type status =
  | Ok
  | Degraded of string  (** serving, with a reason worth surfacing *)
  | Failing of string   (** not fit for traffic; the reason names why *)

val status_label : status -> string
(** ["ok"] / ["degraded"] / ["failing"]. *)

val detail : status -> string option

val register : string -> (unit -> status) -> unit
(** Add (or replace) the named check.  Registration order is the
    presentation order of {!run_all}. *)

val unregister : string -> unit
val clear : unit -> unit

val names : unit -> string list

val run_all : unit -> (string * status) list
(** Run every check (outside the registry lock), in registration order.
    A check that raises reports as {!Failing} with the exception text. *)

val worst : (string * status) list -> status
(** The aggregate: the most severe status in the list ({!Ok} if empty). *)

val culprits : (string * status) list -> string list
(** Names of {!Failing} checks only. *)

val to_json : (string * status) list -> Obs.Json.t
(** [{"status":"ok|degraded|failing","culprits":[...],
     "checks":[{"name":...,"status":...,"detail":...}]}]. *)
