(* Process-wide subsystem health registry; see health.mli. *)

type status = Ok | Degraded of string | Failing of string

let status_label = function
  | Ok -> "ok"
  | Degraded _ -> "degraded"
  | Failing _ -> "failing"

let detail = function Ok -> None | Degraded d | Failing d -> Some d

let severity = function Ok -> 0 | Degraded _ -> 1 | Failing _ -> 2

(* Registration order is presentation order, so the check list reads the
   same in every /readyz body and stats response. *)
let checks : (string * (unit -> status)) list ref = ref []
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let register name run =
  locked (fun () ->
      if List.mem_assoc name !checks then
        checks :=
          List.map (fun (n, r) -> if n = name then (n, run) else (n, r)) !checks
      else checks := !checks @ [ (name, run) ])

let unregister name =
  locked (fun () -> checks := List.filter (fun (n, _) -> n <> name) !checks)

let clear () = locked (fun () -> checks := [])

let names () = locked (fun () -> List.map fst !checks)

let run_all () =
  (* Snapshot under the lock, run outside it: a slow check must not
     block registration, and a check that itself consults the registry
     must not deadlock. *)
  let snap = locked (fun () -> !checks) in
  List.map
    (fun (name, run) ->
      ( name,
        try run ()
        with e -> Failing (Printf.sprintf "check raised: %s" (Printexc.to_string e)) ))
    snap

let worst results =
  List.fold_left
    (fun acc (_, s) -> if severity s > severity acc then s else acc)
    Ok results

let culprits results =
  List.filter_map
    (fun (name, s) -> match s with Failing _ -> Some name | _ -> None)
    results

let to_json results =
  Obs.Json.Obj
    [ ("status", Obs.Json.Str (status_label (worst results)));
      ("culprits", Obs.Json.List (List.map (fun n -> Obs.Json.Str n) (culprits results)));
      ("checks",
       Obs.Json.List
         (List.map
            (fun (name, s) ->
              Obs.Json.Obj
                ([ ("name", Obs.Json.Str name);
                   ("status", Obs.Json.Str (status_label s)) ]
                 @ (match detail s with
                    | Some d -> [ ("detail", Obs.Json.Str d) ]
                    | None -> [])))
            results)) ]
