(* Burn-rate SLO engine; see slo.mli. *)

type source =
  | Ratio of { good : unit -> float; total : unit -> float }
  | Latency of { hist : Obs.Metrics.histogram; threshold_ms : float }

type objective = { name : string; target : float; source : source }

let check_target name target =
  if not (target > 0.0 && target < 1.0) then
    invalid_arg
      (Printf.sprintf "Slo: objective %S target must be in (0,1), got %g" name
         target)

let availability ~name ~target ~good ~total =
  check_target name target;
  { name; target; source = Ratio { good; total } }

let latency ~name ~target ~threshold_ms hist =
  check_target name target;
  if threshold_ms <= 0.0 then
    invalid_arg "Slo.latency: threshold_ms must be > 0";
  { name; target; source = Latency { hist; threshold_ms } }

type kind = Fast_burn | Slow_burn | Recovered

let kind_label = function
  | Fast_burn -> "fast_burn"
  | Slow_burn -> "slow_burn"
  | Recovered -> "recovered"

type event = {
  ev_slo : string;
  ev_window : string;          (* "fast" | "slow" *)
  ev_burn_rate : float;
  ev_kind : kind;
}

(* Cumulative (good, total) samples in a ring sized for the slow window;
   burn over a window is the bad fraction across it, scaled by the error
   budget (1 - target).  Burn 1.0 = consuming budget exactly on pace. *)
type obj_state = {
  obj : objective;
  ring : (float * float) array;
  mutable head : int;          (* next write slot *)
  mutable filled : int;
  g_budget : Obs.Metrics.gauge;
  g_burn_fast : Obs.Metrics.gauge;
  g_burn_slow : Obs.Metrics.gauge;
  mutable alert_fast : bool;
  mutable alert_slow : bool;
}

type t = {
  objs : obj_state list;
  fast_window : int;
  slow_window : int;
  fast_threshold : float;
  slow_threshold : float;
  on_event : event -> unit;
  mu : Mutex.t;
}

let sample_source = function
  | Ratio { good; total } -> (good (), total ())
  | Latency { hist; threshold_ms } ->
    (* Good = observations at or under the threshold, read off the
       cumulative bucket counts at the last bound <= threshold. *)
    let bounds = Obs.Metrics.histogram_bounds hist in
    let counts = Obs.Metrics.bucket_counts hist in
    let good = ref 0 in
    Array.iteri
      (fun i b -> if b <= threshold_ms then good := !good + counts.(i))
      bounds;
    (float_of_int !good, float_of_int (Obs.Metrics.histogram_count hist))

let create ?(fast_window = 60) ?(slow_window = 3600) ?(fast_threshold = 14.4)
    ?(slow_threshold = 6.0) ?(on_event = fun _ -> ()) objectives =
  if fast_window < 1 || slow_window < fast_window then
    invalid_arg "Slo.create: need 1 <= fast_window <= slow_window";
  if objectives = [] then invalid_arg "Slo.create: no objectives";
  let objs =
    List.map
      (fun obj ->
        let g name =
          Obs.Metrics.gauge (Printf.sprintf "slo.%s.%s" obj.name name)
        in
        let st =
          { obj;
            ring = Array.make (slow_window + 1) (0.0, 0.0);
            head = 0; filled = 0;
            g_budget = g "budget_remaining";
            g_burn_fast = g "burn_rate_1m";
            g_burn_slow = g "burn_rate_1h";
            alert_fast = false; alert_slow = false }
        in
        Obs.Metrics.set st.g_budget 1.0;
        st)
      objectives
  in
  { objs; fast_window; slow_window; fast_threshold; slow_threshold; on_event;
    mu = Mutex.create () }

(* The sample [lag] ticks back (clamped to the oldest retained). *)
let back st lag =
  let lag = min lag (st.filled - 1) in
  let n = Array.length st.ring in
  st.ring.((st.head - 1 - lag + (2 * n)) mod n)

(* Bad fraction between the sample [window] ticks back and the newest
   one.  Deltas are clamped at 0 so a counter reset (tests, restarts)
   reads as a quiet window rather than a negative burn. *)
let bad_fraction st window =
  let gd_old, tot_old = back st window in
  let gd_new, tot_new = back st 0 in
  let d_total = Float.max 0.0 (tot_new -. tot_old) in
  let d_bad = Float.max 0.0 ((tot_new -. gd_new) -. (tot_old -. gd_old)) in
  if d_total <= 0.0 then 0.0 else Float.min 1.0 (d_bad /. d_total)

let tick t =
  Mutex.lock t.mu;
  let fired =
    List.concat_map
      (fun st ->
        let g, tot = sample_source st.obj.source in
        st.ring.(st.head) <- (g, tot);
        st.head <- (st.head + 1) mod Array.length st.ring;
        st.filled <- min (st.filled + 1) (Array.length st.ring);
        let budget = 1.0 -. st.obj.target in
        let burn w = bad_fraction st w /. budget in
        let burn_fast = burn t.fast_window in
        let burn_slow = burn t.slow_window in
        Obs.Metrics.set st.g_burn_fast burn_fast;
        Obs.Metrics.set st.g_burn_slow burn_slow;
        Obs.Metrics.set st.g_budget
          (Float.max 0.0 (Float.min 1.0 (1.0 -. burn_slow)));
        (* Edge-triggered alerts with half-threshold hysteresis, so a
           burn rate dithering around the line cannot flap events. *)
        let edges = ref [] in
        let fire window rate kind =
          edges :=
            { ev_slo = st.obj.name; ev_window = window; ev_burn_rate = rate;
              ev_kind = kind }
            :: !edges
        in
        if burn_fast >= t.fast_threshold && not st.alert_fast then begin
          st.alert_fast <- true;
          fire "fast" burn_fast Fast_burn
        end
        else if st.alert_fast && burn_fast < t.fast_threshold /. 2.0 then begin
          st.alert_fast <- false;
          fire "fast" burn_fast Recovered
        end;
        if burn_slow >= t.slow_threshold && not st.alert_slow then begin
          st.alert_slow <- true;
          fire "slow" burn_slow Slow_burn
        end
        else if st.alert_slow && burn_slow < t.slow_threshold /. 2.0 then begin
          st.alert_slow <- false;
          fire "slow" burn_slow Recovered
        end;
        List.rev !edges)
      t.objs
  in
  Mutex.unlock t.mu;
  (* Callbacks run outside the lock: an event handler may read burn
     rates or even tick another engine without deadlocking. *)
  List.iter t.on_event fired

let find t name =
  match List.find_opt (fun st -> st.obj.name = name) t.objs with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "Slo: unknown objective %S" name)

let burn_rate t ~name window =
  let st = find t name in
  Obs.Metrics.gauge_value
    (match window with `Fast -> st.g_burn_fast | `Slow -> st.g_burn_slow)

let budget_remaining t ~name =
  Obs.Metrics.gauge_value (find t name).g_budget

let objective_names t = List.map (fun st -> st.obj.name) t.objs
