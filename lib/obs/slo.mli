(** Declarative service-level objectives with error-budget burn rates.

    An {!objective} names a target fraction of {e good} events
    (availability >= 99.9%, repairs under 500 ms >= 99%, ...) read from
    cumulative sources — existing counters or histograms.  The engine is
    driven by {!tick} at a steady cadence (the server ticks it at ~1 Hz);
    each tick samples every source into a sliding ring and publishes
    three gauges per objective:

    - [slo.<name>.burn_rate_1m] — error-budget burn over the fast window,
    - [slo.<name>.burn_rate_1h] — burn over the slow window,
    - [slo.<name>.budget_remaining] — 1 - slow burn, clamped to [0,1].

    Burn rate is the standard multi-window measure: the bad fraction
    over the window divided by the error budget (1 - target), so 1.0
    means consuming the budget exactly on pace and 14.4 means the whole
    budget would be gone in 1/14.4 of the period.  Crossing the fast or
    slow threshold fires an edge-triggered {!event} (with half-threshold
    hysteresis) through [on_event] — the server writes these into the
    access-log stream.

    Windows are counted in {e ticks}: at the default 1 Hz cadence the
    defaults (60 / 3600) are one minute and one hour.  Tests and benches
    drive {!tick} directly with small windows — no wall clock inside. *)

type source =
  | Ratio of { good : unit -> float; total : unit -> float }
    (** cumulative good / total event counts (e.g. requests - errors). *)
  | Latency of { hist : Obs.Metrics.histogram; threshold_ms : float }
    (** good = observations with value <= threshold, read from the
        histogram's cumulative bucket counts; the threshold should be a
        bucket bound (anything between two bounds rounds down). *)

type objective = { name : string; target : float; source : source }

val availability :
  name:string -> target:float ->
  good:(unit -> float) -> total:(unit -> float) -> objective
(** @raise Invalid_argument unless [target] is in (0,1). *)

val latency :
  name:string -> target:float -> threshold_ms:float ->
  Obs.Metrics.histogram -> objective
(** The objective "a [target] fraction of observations stay at or under
    [threshold_ms]".  @raise Invalid_argument unless [target] in (0,1)
    and [threshold_ms > 0]. *)

type kind = Fast_burn | Slow_burn | Recovered

val kind_label : kind -> string

type event = {
  ev_slo : string;
  ev_window : string;          (** ["fast"] or ["slow"] *)
  ev_burn_rate : float;
  ev_kind : kind;
}

type t

val create :
  ?fast_window:int ->
  ?slow_window:int ->
  ?fast_threshold:float ->
  ?slow_threshold:float ->
  ?on_event:(event -> unit) ->
  objective list ->
  t
(** Registers the three gauges per objective (budget starts at 1.0).
    Windows are in ticks (defaults 60 / 3600); thresholds default to
    14.4 (fast — the whole budget gone in ~2 days at 99.9%) and 6.0
    (slow).  @raise Invalid_argument on an empty objective list or bad
    windows. *)

val tick : t -> unit
(** Sample every objective's source and refresh its gauges; fires
    [on_event] for threshold crossings (outside the internal lock). *)

val burn_rate : t -> name:string -> [ `Fast | `Slow ] -> float
val budget_remaining : t -> name:string -> float
val objective_names : t -> string list
