(* OCaml runtime / GC telemetry sampler; see runtime.mli. *)

type metrics = {
  g_minor_cols : Obs.Metrics.gauge;
  g_major_cols : Obs.Metrics.gauge;
  g_compactions : Obs.Metrics.gauge;
  g_forced_major : Obs.Metrics.gauge;
  g_heap_words : Obs.Metrics.gauge;
  g_top_heap_words : Obs.Metrics.gauge;
  g_live_words : Obs.Metrics.gauge;
  g_minor_words : Obs.Metrics.gauge;
  g_promoted_words : Obs.Metrics.gauge;
  g_major_words : Obs.Metrics.gauge;
  g_fds : Obs.Metrics.gauge;
  g_uptime : Obs.Metrics.gauge;
  g_major_cycle_gap_ms : Obs.Metrics.gauge;
  c_major_cycles : Obs.Metrics.counter;
  h_lag : Obs.Metrics.histogram;
  mutable last_ms : float option;  (* previous sample, for heartbeat lag *)
  start_ms : float;
  mutable alarm_installed : bool;
  alarm_last_ms : float Atomic.t;  (* 0.0 until the alarm first fires *)
  mu : Mutex.t;
}

(* Registered on first use, not at module load, so processes that never
   sample keep their registry (and scrape) free of runtime.* series. *)
let state =
  lazy
    ({ g_minor_cols = Obs.Metrics.gauge "runtime.gc.minor_collections";
       g_major_cols = Obs.Metrics.gauge "runtime.gc.major_collections";
       g_compactions = Obs.Metrics.gauge "runtime.gc.compactions";
       g_forced_major = Obs.Metrics.gauge "runtime.gc.forced_major_collections";
       g_heap_words = Obs.Metrics.gauge "runtime.gc.heap_words";
       g_top_heap_words = Obs.Metrics.gauge "runtime.gc.top_heap_words";
       g_live_words = Obs.Metrics.gauge "runtime.gc.live_words";
       g_minor_words = Obs.Metrics.gauge "runtime.gc.minor_words";
       g_promoted_words = Obs.Metrics.gauge "runtime.gc.promoted_words";
       g_major_words = Obs.Metrics.gauge "runtime.gc.major_words";
       g_fds = Obs.Metrics.gauge "runtime.fds";
       g_uptime = Obs.Metrics.gauge "runtime.uptime_s";
       g_major_cycle_gap_ms = Obs.Metrics.gauge "runtime.gc.major_cycle_gap_ms";
       c_major_cycles = Obs.Metrics.counter "runtime.gc.major_cycles";
       h_lag = Obs.Metrics.histogram "runtime.heartbeat_lag_ms";
       last_ms = None; start_ms = Obs.now_ms (); alarm_installed = false;
       alarm_last_ms = Atomic.make 0.0; mu = Mutex.create () }
      : metrics)

let set_build_info ?(version = "dev") ?(extra = []) () =
  Obs.Metrics.info "dart_build_info"
    ([ ("version", version); ("ocaml", Sys.ocaml_version);
       ("word_size", string_of_int Sys.word_size); ("os", Sys.os_type);
       ("backend", if Sys.backend_type = Sys.Native then "native" else "bytecode") ]
     @ extra)

(* End-of-major-cycle accounting.  The callback runs at the top of each
   completed major cycle: it counts cycles and records the wall-clock gap
   between consecutive cycle ends — a shrinking gap is the GC running
   hot.  (A major slice's own pause is not observable from inside the
   process; [runtime.heartbeat_lag_ms] is the pause proxy: how late the
   ~1 Hz sampler woke, which any stop-the-world work inflates.) *)
let install_alarm () =
  let st = Lazy.force state in
  Mutex.lock st.mu;
  let fresh = not st.alarm_installed in
  if fresh then st.alarm_installed <- true;
  Mutex.unlock st.mu;
  if fresh then
    ignore
      (Gc.create_alarm (fun () ->
           let now = Obs.now_ms () in
           let prev = Atomic.exchange st.alarm_last_ms now in
           Obs.Metrics.incr st.c_major_cycles;
           if prev > 0.0 then
             Obs.Metrics.set st.g_major_cycle_gap_ms (now -. prev)))

let fd_count () =
  match Sys.readdir "/proc/self/fd" with
  | entries -> Some (Array.length entries)
  | exception Sys_error _ -> None

let sample ?now_ms ?interval_ms ?(live = false) () =
  let st = Lazy.force state in
  let now = match now_ms with Some n -> n | None -> Obs.now_ms () in
  Mutex.lock st.mu;
  (match (st.last_ms, interval_ms) with
   | Some last, Some interval ->
     (* How late this tick ran vs. the intended cadence: scheduler delay
        plus any stop-the-world pause that landed on the sampler. *)
     Obs.Metrics.observe st.h_lag (Float.max 0.0 (now -. last -. interval))
   | _ -> ());
  st.last_ms <- Some now;
  let start = st.start_ms in
  Mutex.unlock st.mu;
  let q = Gc.quick_stat () in
  Obs.Metrics.set st.g_minor_cols (float_of_int q.Gc.minor_collections);
  Obs.Metrics.set st.g_major_cols (float_of_int q.Gc.major_collections);
  Obs.Metrics.set st.g_compactions (float_of_int q.Gc.compactions);
  Obs.Metrics.set st.g_forced_major
    (float_of_int q.Gc.forced_major_collections);
  Obs.Metrics.set st.g_heap_words (float_of_int q.Gc.heap_words);
  Obs.Metrics.set st.g_top_heap_words (float_of_int q.Gc.top_heap_words);
  Obs.Metrics.set st.g_minor_words q.Gc.minor_words;
  Obs.Metrics.set st.g_promoted_words q.Gc.promoted_words;
  Obs.Metrics.set st.g_major_words q.Gc.major_words;
  (* [Gc.stat] walks the heap — only on explicit request (the sampler
     thread asks roughly once a minute). *)
  if live then
    (try Obs.Metrics.set st.g_live_words (float_of_int (Gc.stat ()).Gc.live_words)
     with _ -> ());
  (match fd_count () with
   | Some n -> Obs.Metrics.set st.g_fds (float_of_int n)
   | None -> ());
  Obs.Metrics.set st.g_uptime ((now -. start) /. 1000.0)

let major_cycles () =
  Obs.Metrics.value (Lazy.force state).c_major_cycles

(* ------------------------------------------------------------------ *)
(* Background sampler                                                  *)
(* ------------------------------------------------------------------ *)

type sampler = { stop_flag : bool Atomic.t; thread : Thread.t }

let start ?(interval_s = 1.0) ?(live_every = 60) () =
  if interval_s <= 0.0 then invalid_arg "Runtime.start: interval_s must be > 0";
  install_alarm ();
  set_build_info ();
  let stop_flag = Atomic.make false in
  let thread =
    Thread.create
      (fun () ->
        let interval_ms = interval_s *. 1000.0 in
        let tick = ref 0 in
        sample ~interval_ms ();
        while not (Atomic.get stop_flag) do
          (* Sleep in short slices so [stop] returns promptly. *)
          let next = Obs.now_ms () +. interval_ms in
          while (not (Atomic.get stop_flag)) && Obs.now_ms () < next do
            Thread.delay (Float.min 0.1 interval_s)
          done;
          if not (Atomic.get stop_flag) then begin
            incr tick;
            sample ~interval_ms
              ~live:(live_every > 0 && !tick mod live_every = 0)
              ()
          end
        done)
      ()
  in
  { stop_flag; thread }

let stop s =
  Atomic.set s.stop_flag true;
  Thread.join s.thread
