(** Observability for the DART pipeline: spans, metrics, event sinks.

    Three orthogonal facilities, all zero-dependency (stdlib + [Unix]):

    {ul
    {- {b Spans}: hierarchical wall-clock timings.  [span "repair.component"
       ~attrs f] times [f] and emits one event when it returns (or raises).
       Nesting is tracked with an explicit stack, so sinks see each span's
       depth and exporters can reconstruct the tree.}
    {- {b Metrics}: a process-wide registry of named counters, gauges and
       fixed-bucket histograms, updated unconditionally (an increment is a
       single in-place mutation) and dumped on demand as JSON.}
    {- {b Sinks}: pluggable consumers of span/log events — a levelled text
       logger, a JSON-lines stream, a Chrome [trace_event] exporter for
       flame-graph viewing ([chrome://tracing] / Perfetto), and an in-memory
       sink for tests.}}

    The fast path is "no sink installed": [span] then runs the thunk
    directly and [log] returns immediately, so instrumented hot paths cost
    one list-emptiness check when observability is off.  Call sites that
    would allocate attribute lists on every event should guard with
    {!enabled}.

    Everything here is safe to use from multiple domains (the server's
    worker pool relies on this): the span stack is domain-local, counters
    and gauges are atomics, histograms and sink emission are
    mutex-protected, and the clock is monotonic-safe. *)

(** {1 Severity levels} *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
val level_of_string : string -> (level, string) result

val set_level : level -> unit
(** Global threshold for {!log} events (spans are not filtered). Default
    [Info]. *)

val current_level : unit -> level

(** {1 Attributes and events} *)

type value = Int of int | Float of float | Str of string | Bool of bool

type attrs = (string * value) list

type event =
  | Span of {
      name : string;
      attrs : attrs;
      start_us : float;   (** wall-clock start, microseconds since epoch *)
      dur_us : float;     (** duration, microseconds *)
      depth : int;        (** nesting depth at entry; 0 = root *)
      trace_id : string;  (** request-scoped trace this span belongs to *)
      span_id : string;   (** this span's unique id *)
      parent_id : string; (** parent span id; [""] at the trace root *)
      did : int;          (** domain id the span ran on *)
    }
  | Log of {
      level : level;
      name : string;
      attrs : attrs;
      ts_us : float;
      depth : int;
      trace_id : string;  (** enclosing trace; [""] outside any trace *)
      did : int;
    }

val event_ts_us : event -> float
(** The event's timestamp ([start_us] for spans, [ts_us] for logs). *)

val event_trace_id : event -> string

(** {1 JSON}

    A minimal self-contained JSON tree: enough to serialize events and
    metric snapshots, and to parse them back (used by the bench smoke check
    and the escaping tests).  No external dependency. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering with full string escaping (control characters are
      emitted as [\u00XX]). *)

  val of_string : string -> (t, string) result
  (** Strict recursive-descent parser; [Error] carries a message with the
      offending position. *)

  val escape : string -> string
  (** The quoted, escaped JSON form of a string (including the quotes). *)
end

val json_of_event : event -> Json.t
(** The JSON-lines representation of an event (what {!jsonl_sink} writes,
    one per line). *)

(** {1 Clock}

    All timing in the repo goes through these helpers.  They read the
    wall clock ([Unix.gettimeofday], so timestamps stay human-meaningful
    in sinks) but are {e monotonic-safe}: the value returned never
    decreases within the process, even if NTP steps the system clock
    backwards, so durations computed from two readings — span durations,
    [Solver.stats.solve_ms], server latency metrics — are always >= 0.
    Safe to call from any domain. *)

val now_us : unit -> float
(** Monotonic-safe wall-clock microseconds since the epoch. *)

val now_ms : unit -> float
(** Monotonic-safe wall-clock milliseconds since the epoch. *)

val elapsed_us : since:float -> float
(** Microseconds elapsed since an earlier {!now_us} reading, clamped at
    [0.0]. *)

val elapsed_ms : since:float -> float
(** Milliseconds elapsed since an earlier {!now_ms} reading, clamped at
    [0.0]. *)

(** {1 Sinks} *)

type sink

val text_sink : ?min_level:level -> out_channel -> sink
(** Human-readable logger: log records at [min_level] and above; span
    records only when [min_level] is [Debug].  Flushes per event. *)

val jsonl_sink : out_channel -> sink
(** One JSON object per event, one per line. *)

val chrome_trace_sink : out_channel -> sink
(** Chrome [trace_event] JSON-array format: spans become complete
    (["ph":"X"]) events, logs become instant (["ph":"i"]) events.  The
    closing bracket is written when the sink is closed (see
    {!close_sinks}), making the file a valid JSON document. *)

val memory_sink : unit -> sink * (unit -> event list)
(** In-memory accumulator for tests; the getter returns events in emission
    order. *)

val flight_recorder : ?capacity:int -> unit -> sink * (unit -> event list)
(** Bounded ring buffer of recent events, one ring of [capacity] (default
    256) events per domain so a busy pool domain cannot evict another's
    history.  The getter snapshots every ring, merged in timestamp order;
    filter by {!event_trace_id} to post-mortem one request.  Dropping old
    events is the point: install it permanently and dump only when a
    request ends badly. *)

val install : sink -> unit
val uninstall : sink -> unit
(** Remove (and close) one sink; unknown sinks are ignored. *)

val close_sinks : unit -> unit
(** Close and remove every installed sink (finalizing Chrome traces). *)

val enabled : unit -> bool
(** [true] iff at least one sink is installed.  Guard allocation-heavy
    event construction with this. *)

(** {1 Spans and logs} *)

val span : ?attrs:attrs -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], emitting a {!Span} event when it completes.
    If [f] raises, the span is emitted with an ["error"] attribute and the
    exception is re-raised.  With no sink installed this is just [f ()]. *)

val add_attr : string -> value -> unit
(** Attach an attribute to the innermost open span (no-op outside any
    span).  Lets code record quantities that are only known mid-span. *)

val log : ?attrs:attrs -> level -> string -> unit
(** Emit a {!Log} event to all sinks, subject to {!set_level}. *)

val emit_span : ?attrs:attrs -> start_us:float -> dur_us:float -> string -> unit
(** Emit a pre-timed {!Span} event without running a thunk, parented like a
    span opened right now (innermost open span, else ambient
    {!Trace.context}).  For intervals whose duration elapsed before the
    observing code ran — e.g. the server's queue-wait span, emitted by the
    worker that finally dequeues the job.  No-op with no sink installed. *)

(** {1 Trace context}

    Every span carries a [trace_id] (stable across one logical request,
    even across domains and processes), a [span_id] and a [parent_id],
    so exporters can stitch the exact tree.  Identity is ambient: a span
    opened under another span inherits its trace and parents onto it; a
    span opened on an empty stack consults the domain-local ambient
    context; with neither, it starts a fresh trace.

    [with_context] is the rebinding primitive: the server pool captures
    {!Trace.current} when a job is submitted and rebinds it in the worker
    domain, and the wire protocol carries the same pair in the request
    envelope so client and server halves of a request share one trace. *)

module Trace : sig
  type context = {
    trace_id : string;
    parent_span_id : string; (** span new children parent onto; may be [""] *)
  }

  val fresh_trace_id : unit -> string
  (** A new 16-hex-digit trace id (process-unique, seeded per process). *)

  val fresh_span_id : unit -> string

  val current : unit -> context option
  (** The identity a child span opened right now would inherit: the
      innermost open span on this domain's stack, else the ambient context
      set by {!with_context}, else [None]. *)

  val with_context : context option -> (unit -> 'a) -> 'a
  (** [with_context ctx f] runs [f] with the domain's ambient context set
      to [ctx], restoring the previous value afterwards (also on raise). *)
end

(** {1 Metrics} *)

module Metrics : sig
  type counter
  type gauge
  type histogram

  val counter : string -> counter
  (** Register (or look up) a monotone integer counter. *)

  val incr : counter -> unit
  val add : counter -> int -> unit
  val value : counter -> int

  val gauge : string -> gauge
  (** Register (or look up) a last-value-wins float gauge. *)

  val set : gauge -> float -> unit
  val gauge_value : gauge -> float

  val histogram : ?buckets:float array -> string -> histogram
  (** Register (or look up) a fixed-bucket histogram.  [buckets] are the
      inclusive upper bounds of each bucket, in increasing order; an
      implicit [+inf] overflow bucket is appended.  An observation [v]
      lands in the first bucket with [v <= bound]. *)

  val observe : histogram -> float -> unit
  val bucket_counts : histogram -> int array
  (** Per-bucket counts; the last entry is the overflow bucket. *)

  val histogram_bounds : histogram -> float array
  (** The finite bucket upper bounds (a copy; overflow bucket omitted). *)

  (** {2 Exemplars}

      A histogram can retain, per bucket, the worst observation seen in
      the current window together with the trace id that produced it —
      one hop from a p99 number to its trace tree.  Exemplars age out
      (default window 60 s): within the window the largest value wins;
      a stale exemplar is replaced by any fresh observation. *)

  type exemplar = {
    ex_le : float;       (** the bucket's upper bound; [infinity] = overflow *)
    ex_value : float;
    ex_trace_id : string;
    ex_ts_ms : float;
  }

  val observe_ex : ?now_ms:float -> ?trace_id:string -> histogram -> float -> unit
  (** Like {!observe}; additionally considers the observation as an
      exemplar for its bucket when [trace_id] is a non-empty string.
      [now_ms] overrides the implicit timestamp (tests). *)

  val exemplars : ?now_ms:float -> histogram -> exemplar list
  (** Live (non-stale) exemplars in bucket order. *)

  val exemplars_json : ?now_ms:float -> unit -> Json.t
  (** Every histogram's live exemplars:
      [{"hist.name":[{"le":...,"value":...,"trace_id":...,"ts_ms":...}]}].
      Histograms with no live exemplar are omitted. *)

  val set_exemplar_window_ms : float -> unit
  (** Change the exemplar retention window (default 60_000 ms).
      @raise Invalid_argument if the window is not positive. *)

  val info : string -> (string * string) list -> unit
  (** Register (or relabel) an {e info} metric: a constant-1 gauge whose
      labels carry build/version facts
      ([dart_build_info{version="..."} 1]).  Label names are sanitized
      like metric names; label values are escaped per the text format. *)

  val escape_label_value : string -> string
  (** Escape a label value for the Prometheus text format (backslash,
      double quote and newline). *)

  val histogram_sum : histogram -> float
  val histogram_count : histogram -> int

  val quantile : histogram -> float -> float
  (** [quantile h q] estimates the [q]-quantile ([0.0 <= q <= 1.0]) from
      the bucket counts, linearly interpolating inside the bucket the rank
      falls in (first bucket interpolates from [0.0]; ranks landing in the
      overflow bucket clamp to the last finite bound).  [0.0] on an empty
      histogram. *)

  val sanitize : string -> string
  (** Map a registry name to a valid Prometheus metric name: characters
      outside [[a-zA-Z0-9_:]] become [_], and a leading digit is
      prefixed with [_]. *)

  val prometheus : unit -> string
  (** The whole registry in Prometheus text exposition format (0.0.4):
      names sanitized (non-[[a-zA-Z0-9_:]] characters become [_]),
      counters and gauges as single samples, histograms as cumulative
      [_bucket{le="..."}] series plus [_sum]/[_count] and derived
      [_p50]/[_p95]/[_p99] gauges computed with {!quantile}. *)

  val snapshot : unit -> Json.t
  (** The whole registry as JSON:
      [{"counters":{...},"gauges":{...},"histograms":{...}}] (plus an
      ["infos"] object when {!info} metrics are registered), with names
      in registration order. *)

  val reset : unit -> unit
  (** Zero every registered metric in place (existing handles stay
      valid — they are the same mutable cells). *)
end

(** {1 Timelines}

    A bounded sampled series of [(elapsed_us, value)] points — how a
    quantity (a branch-and-bound gap, an open-node count) evolved over
    one computation.  Admission is decimated deterministically: every
    [stride]-th offered sample is retained, and when the buffer fills,
    every other retained point is dropped and the stride doubles, so
    memory stays O(capacity) for arbitrarily long runs while the series
    always spans the whole observation window.  Not thread-safe: a
    timeline belongs to the single computation it instruments. *)

module Timeline : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** A fresh timeline whose clock starts now ([capacity] >= 2,
      default 256 points). *)

  val record : ?elapsed_us:float -> ?force:bool -> t -> float -> unit
  (** Offer a sample.  [elapsed_us] overrides the implicit
      time-since-[create] stamp (for callers with their own clock);
      [force] bypasses stride decimation for must-keep points (e.g. a new
      incumbent) — forced points are still subject to halving when the
      buffer later fills. *)

  val length : t -> int
  (** Points currently retained. *)

  val capacity : t -> int

  val seen : t -> int
  (** Samples offered so far (retained or not). *)

  val points : t -> (float * float) list
  (** Retained [(elapsed_us, value)] points in record order. *)

  val to_json : t -> Json.t
  (** [[[elapsed_us, value], ...]] — a JSON list of two-element lists. *)
end

(** {1 Phase timers}

    Named wall-clock accumulators for attributing one computation's time
    across its internal phases (simplex phase-1 vs phase-2 vs dual
    restore, etc.).  A cheap owned value, not process-global state like
    {!Metrics} — create one per solve, merge children upward.  Not
    thread-safe. *)

module Phases : sig
  type t

  val create : unit -> t

  val time : t -> string -> (unit -> 'a) -> 'a
  (** Run the thunk, adding its wall-clock duration (and one call) to the
      named phase; exception-safe. *)

  val add_us : t -> string -> float -> unit
  (** Credit a pre-measured duration (clamped at [0.0]) to the named
      phase, counting one call. *)

  val count : t -> string -> int
  val total_us : t -> string -> float
  (** [0] / [0.0] for a phase never credited. *)

  val merge_into : dst:t -> t -> unit
  (** Fold a child's phases into an aggregate (summing counts and
      totals), preserving first-use order across the merge. *)

  val to_list : t -> (string * (int * float)) list
  (** [(name, (count, total_us))] in first-use order. *)

  val to_json : t -> Json.t
  (** [{"name":{"count":n,"total_us":t},...}] in first-use order. *)
end
