(** Observability: spans, metrics, event sinks.  See the interface for the
    design; implementation notes:

    - the "no sink" fast path must not allocate: [span]/[log] first match on
      the sink list and bail out before touching the clock or the stack;
    - sinks are plain records of closures so tests can inject collectors;
    - the metrics registry is a string-keyed hashtable of mutable cells;
      handles returned by [counter]/[gauge]/[histogram] alias those cells,
      so updates are single stores and [reset] zeroes in place. *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | other -> (
    match int_of_string_opt other with
    | Some 0 -> Ok Debug
    | Some 1 -> Ok Info
    | Some 2 -> Ok Warn
    | Some 3 -> Ok Error
    | _ -> Result.Error (Printf.sprintf "unknown log level %S (debug|info|warn|error)" s))

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let min_level = ref Info
let set_level l = min_level := l
let current_level () = !min_level

type value = Int of int | Float of float | Str of string | Bool of bool

type attrs = (string * value) list

type event =
  | Span of {
      name : string;
      attrs : attrs;
      start_us : float;
      dur_us : float;
      depth : int;
      trace_id : string;
      span_id : string;
      parent_id : string;  (* "" = root *)
      did : int;           (* domain id the span ran on *)
    }
  | Log of {
      level : level;
      name : string;
      attrs : attrs;
      ts_us : float;
      depth : int;
      trace_id : string;
      did : int;
    }

let event_ts_us = function Span { start_us; _ } -> start_us | Log { ts_us; _ } -> ts_us
let event_trace_id = function Span { trace_id; _ } -> trace_id | Log { trace_id; _ } -> trace_id

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\b' -> Buffer.add_string buf "\\b"
        | '\012' -> Buffer.add_string buf "\\f"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

  let float_repr f =
    if Float.is_nan f || Float.abs f = Float.infinity
    then "null" (* JSON has no NaN/inf; metrics never produce them *)
    else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.12g" f

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> Buffer.add_string buf (escape s)
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape k);
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    write buf t;
    Buffer.contents buf

  (* Strict recursive-descent parser. *)
  exception Parse_error of int * string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (!pos, msg)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
      | None -> fail (Printf.sprintf "expected %C, found end of input" c)
    in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin pos := !pos + l; v end
      else fail (Printf.sprintf "invalid literal (expected %s)" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else begin
          let c = s.[!pos] in
          advance ();
          match c with
          | '"' -> Buffer.contents buf
          | '\\' ->
            (if !pos >= n then fail "unterminated escape";
             let e = s.[!pos] in
             advance ();
             (match e with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                (match int_of_string_opt ("0x" ^ hex) with
                 | None -> fail "invalid \\u escape"
                 | Some cp ->
                   (* Encode the code point as UTF-8 (surrogates land as-is:
                      good enough for round-tripping our own output, which
                      only \u-escapes control characters). *)
                   if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
                   else if cp < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
                   end)
              | c -> fail (Printf.sprintf "invalid escape \\%C" c)));
            go ()
          | c -> Buffer.add_char buf c; go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_float = ref false in
      if peek () = Some '-' then advance ();
      let rec digits () =
        match peek () with
        | Some ('0' .. '9') -> advance (); digits ()
        | _ -> ()
      in
      digits ();
      (match peek () with
       | Some '.' -> is_float := true; advance (); digits ()
       | _ -> ());
      (match peek () with
       | Some ('e' | 'E') ->
         is_float := true;
         advance ();
         (match peek () with Some ('+' | '-') -> advance () | _ -> ());
         digits ()
       | _ -> ());
      let text = String.sub s start (!pos - start) in
      if !is_float then
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "invalid number %S" text)
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "invalid number %S" text))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}' in object"
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']' in array"
          in
          elements []
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected character %C" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage after JSON value";
      v
    with
    | v -> Ok v
    | exception Parse_error (p, msg) ->
      Result.Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)
end

let json_of_value = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let json_of_attrs attrs = Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) attrs)

let json_of_event = function
  | Span { name; attrs; start_us; dur_us; depth; trace_id; span_id; parent_id; did } ->
    Json.Obj
      [ ("type", Json.Str "span"); ("name", Json.Str name);
        ("ts_us", Json.Float start_us); ("dur_us", Json.Float dur_us);
        ("depth", Json.Int depth); ("trace_id", Json.Str trace_id);
        ("span_id", Json.Str span_id); ("parent_id", Json.Str parent_id);
        ("did", Json.Int did); ("attrs", json_of_attrs attrs) ]
  | Log { level; name; attrs; ts_us; depth; trace_id; did } ->
    Json.Obj
      [ ("type", Json.Str "log"); ("level", Json.Str (level_to_string level));
        ("name", Json.Str name); ("ts_us", Json.Float ts_us);
        ("depth", Json.Int depth); ("trace_id", Json.Str trace_id);
        ("did", Json.Int did); ("attrs", json_of_attrs attrs) ]

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(* Monotonic-safe wall clock.  [Unix.gettimeofday] can jump backwards
   under NTP adjustment, which would make span durations and
   [Solver.stats.solve_ms] negative.  We keep the epoch basis (sinks
   render human-readable timestamps from it) but never let the reported
   time decrease: the last value handed out is kept in an [Atomic] (an
   integer microsecond count, so compare-and-set compares by value, not
   by boxed-float identity) and each reading is clamped to it.  Deltas
   between two [now_us] readings are therefore always >= 0, from any
   domain. *)
let last_us = Atomic.make 0

let now_us () =
  let t = int_of_float (Unix.gettimeofday () *. 1e6) in
  let rec clamp () =
    let prev = Atomic.get last_us in
    if t <= prev then prev
    else if Atomic.compare_and_set last_us prev t then t
    else clamp ()
  in
  float_of_int (clamp ())

let now_ms () = now_us () /. 1e3

let elapsed_us ~since = Float.max 0.0 (now_us () -. since)
let elapsed_ms ~since = Float.max 0.0 (now_ms () -. since)

(* ------------------------------------------------------------------ *)
(* Trace/span identity                                                 *)
(* ------------------------------------------------------------------ *)

(* 16-hex-digit ids from a splitmix64 stream over an atomic counter.
   The seed mixes boot time and pid so two processes sharing a trace
   (client and server) cannot collide on span ids; the counter makes ids
   unique across domains without coordination beyond one fetch-and-add. *)
let id_counter = Atomic.make 1

let id_seed =
  Int64.logxor
    (Int64.of_float (Unix.gettimeofday () *. 1e6))
    (Int64.mul (Int64.of_int (Unix.getpid ())) 0x9E3779B97F4A7C15L)

let splitmix64 x =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let fresh_id () =
  let n = Atomic.fetch_and_add id_counter 1 in
  Printf.sprintf "%016Lx" (splitmix64 (Int64.add id_seed (Int64.of_int n)))

let did () = (Domain.self () :> int)

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

type sink = { emit : event -> unit; close : unit -> unit }

(* The sink list is read on every instrumented call (the "is observability
   on?" check) and mutated rarely.  Reads go through a plain ref — an
   immutable list value is swapped in atomically enough for the OCaml
   memory model (no tearing) — while mutations and event emission are
   serialized by [sink_mu] so concurrent domains never interleave writes
   inside one sink (text lines, JSONL records, the Chrome trace array). *)
let sinks : sink list ref = ref []
let sink_mu = Mutex.create ()

let enabled () = match !sinks with [] -> false | _ :: _ -> true

let with_sink_mu f =
  Mutex.lock sink_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock sink_mu) f

let install s = with_sink_mu (fun () -> sinks := !sinks @ [ s ])

let uninstall s =
  let close =
    with_sink_mu (fun () ->
        if List.memq s !sinks then begin
          sinks := List.filter (fun s' -> s' != s) !sinks;
          true
        end
        else false)
  in
  if close then s.close ()

let close_sinks () =
  let ss = with_sink_mu (fun () -> let ss = !sinks in sinks := []; ss) in
  List.iter (fun s -> s.close ()) ss

let emit ev =
  with_sink_mu (fun () -> List.iter (fun s -> s.emit ev) !sinks)

let pp_attr_text (k, v) =
  let sv =
    match v with
    | Int i -> string_of_int i
    | Float f -> Printf.sprintf "%.3f" f
    | Str s -> s
    | Bool b -> string_of_bool b
  in
  Printf.sprintf " %s=%s" k sv

let text_sink ?(min_level = Info) oc =
  let stamp ts_us =
    let t = ts_us /. 1e6 in
    let tm = Unix.localtime t in
    Printf.sprintf "%02d:%02d:%02d.%03d" tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
      (int_of_float (Float.rem (t *. 1000.0) 1000.0))
  in
  let emit = function
    | Log { level; name; attrs; ts_us; depth; _ } ->
      if severity level >= severity min_level then begin
        Printf.fprintf oc "[%s] %-5s %s%s%s\n" (stamp ts_us)
          (String.uppercase_ascii (level_to_string level))
          (String.make (2 * depth) ' ') name
          (String.concat "" (List.map pp_attr_text attrs));
        flush oc
      end
    | Span { name; attrs; start_us; dur_us; depth; _ } ->
      if severity Debug >= severity min_level then begin
        Printf.fprintf oc "[%s] SPAN  %s%s %.3fms%s\n" (stamp start_us)
          (String.make (2 * depth) ' ') name (dur_us /. 1e3)
          (String.concat "" (List.map pp_attr_text attrs));
        flush oc
      end
  in
  { emit; close = (fun () -> try flush oc with Sys_error _ -> ()) }

let jsonl_sink oc =
  let emit ev =
    output_string oc (Json.to_string (json_of_event ev));
    output_char oc '\n'
  in
  { emit; close = (fun () -> try flush oc with Sys_error _ -> ()) }

let chrome_trace_sink oc =
  output_string oc "[";
  let first = ref true in
  let pid = Unix.getpid () in
  let emit_json j =
    if !first then first := false else output_string oc ",\n";
    output_string oc (Json.to_string j)
  in
  (* Each domain gets its own tid lane so pool concurrency is visible in
     Perfetto; a thread_name metadata record labels the lane the first
     time a domain emits. *)
  let seen_tids : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let lane tid =
    if not (Hashtbl.mem seen_tids tid) then begin
      Hashtbl.add seen_tids tid ();
      emit_json
        (Json.Obj
           [ ("name", Json.Str "thread_name"); ("ph", Json.Str "M");
             ("pid", Json.Int pid); ("tid", Json.Int tid);
             ("args", Json.Obj [ ("name", Json.Str ("domain-" ^ string_of_int tid)) ]) ])
    end
  in
  let emit = function
    | Span { name; attrs; start_us; dur_us; trace_id; did; _ } ->
      lane did;
      emit_json
        (Json.Obj
           [ ("name", Json.Str name); ("ph", Json.Str "X"); ("cat", Json.Str "dart");
             ("ts", Json.Float start_us); ("dur", Json.Float dur_us);
             ("pid", Json.Int pid); ("tid", Json.Int did);
             ("args", json_of_attrs (("trace_id", Str trace_id) :: attrs)) ])
    | Log { level; name; attrs; ts_us; trace_id; did; _ } ->
      lane did;
      emit_json
        (Json.Obj
           [ ("name", Json.Str name); ("ph", Json.Str "i"); ("cat", Json.Str "dart");
             ("ts", Json.Float ts_us); ("pid", Json.Int pid); ("tid", Json.Int did);
             ("s", Json.Str "t");
             ("args",
              json_of_attrs
                (("level", Str (level_to_string level))
                 :: ("trace_id", Str trace_id) :: attrs)) ])
  in
  let close () =
    output_string oc "]\n";
    try flush oc with Sys_error _ -> ()
  in
  { emit; close }

let memory_sink () =
  let acc = ref [] in
  let emit ev = acc := ev :: !acc in
  ({ emit; close = (fun () -> ()) }, fun () -> List.rev !acc)

(* The flight recorder keeps one bounded ring per domain, so a busy pool
   cannot evict another domain's recent history.  Emission is already
   serialized by [sink_mu]; the recorder's own mutex only exists so
   [snapshot] (called from a connection thread while workers keep
   emitting) reads a consistent ring. *)
let flight_recorder ?(capacity = 256) () =
  let capacity = max 1 capacity in
  let mu = Mutex.create () in
  let rings : (int, event option array * int ref) Hashtbl.t = Hashtbl.create 8 in
  let emit ev =
    let d = did () in
    Mutex.lock mu;
    let buf, next =
      match Hashtbl.find_opt rings d with
      | Some r -> r
      | None ->
        let r = (Array.make capacity None, ref 0) in
        Hashtbl.add rings d r;
        r
    in
    buf.(!next mod capacity) <- Some ev;
    incr next;
    Mutex.unlock mu
  in
  let snapshot () =
    Mutex.lock mu;
    let per_ring =
      Hashtbl.fold
        (fun _ (buf, next) acc ->
          let n = min !next capacity in
          let start = !next - n in
          let rec go i acc =
            if i >= n then List.rev acc
            else
              match buf.((start + i) mod capacity) with
              | Some ev -> go (i + 1) (ev :: acc)
              | None -> go (i + 1) acc
          in
          go 0 [] :: acc)
        rings []
    in
    Mutex.unlock mu;
    (* Each ring is already oldest-first; a stable sort keeps emission
       order for events that share a (microsecond) timestamp. *)
    List.stable_sort
      (fun a b -> compare (event_ts_us a) (event_ts_us b))
      (List.concat per_ring)
  in
  ({ emit; close = (fun () -> ()) }, snapshot)

(* ------------------------------------------------------------------ *)
(* Spans and logs                                                      *)
(* ------------------------------------------------------------------ *)

type frame = {
  fname : string;
  fstart : float;
  mutable fattrs : attrs;
  fdepth : int;
  ftrace : string;  (* trace id inherited from parent / ambient context *)
  fspan : string;   (* this span's own id *)
  fparent : string; (* parent span id; "" = trace root *)
}

(* One span stack per domain: spans opened by concurrent worker domains
   nest independently instead of corrupting a shared stack.  Threads
   within one domain share its stack — fine for the server, whose
   connection threads only run leaf spans. *)
let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let add_attr k v =
  match !(stack ()) with
  | [] -> ()
  | fr :: _ -> fr.fattrs <- (k, v) :: fr.fattrs

module Trace = struct
  type context = { trace_id : string; parent_span_id : string }

  (* The ambient context seeds trace identity for spans opened with an
     empty stack — it is what carries a trace across a domain hop (pool
     submit) or a process hop (the wire envelope).  Per-domain like the
     stack itself. *)
  let ambient_key : context option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let ambient () = Domain.DLS.get ambient_key

  let fresh_trace_id () = fresh_id ()
  let fresh_span_id () = fresh_id ()

  let current () =
    match !(stack ()) with
    | fr :: _ -> Some { trace_id = fr.ftrace; parent_span_id = fr.fspan }
    | [] -> !(ambient ())

  let with_context ctx f =
    let cell = ambient () in
    let saved = !cell in
    cell := ctx;
    Fun.protect ~finally:(fun () -> cell := saved) f
end

(* Trace identity for a new root-of-stack event: parent is the innermost
   open span if any, else the ambient context, else a fresh trace. *)
let identity_for_new stack =
  match !stack with
  | fr :: _ -> (fr.ftrace, fr.fspan)
  | [] -> (
    match !(Trace.ambient ()) with
    | Some c -> (c.Trace.trace_id, c.Trace.parent_span_id)
    | None -> (fresh_id (), ""))

let span ?(attrs = []) name f =
  match !sinks with
  | [] -> f ()
  | _ :: _ ->
    let stack = stack () in
    let trace_id, parent_id = identity_for_new stack in
    let fr =
      { fname = name; fstart = now_us (); fattrs = List.rev attrs;
        fdepth = List.length !stack; ftrace = trace_id; fspan = fresh_id ();
        fparent = parent_id }
    in
    stack := fr :: !stack;
    let finish () =
      (match !stack with fr' :: tl when fr' == fr -> stack := tl | _ -> ());
      emit
        (Span
           { name = fr.fname; attrs = List.rev fr.fattrs; start_us = fr.fstart;
             dur_us = elapsed_us ~since:fr.fstart; depth = fr.fdepth;
             trace_id = fr.ftrace; span_id = fr.fspan; parent_id = fr.fparent;
             did = did () })
    in
    (match f () with
     | v -> finish (); v
     | exception e ->
       fr.fattrs <- ("error", Str (Printexc.to_string e)) :: fr.fattrs;
       finish ();
       raise e)

let emit_span ?(attrs = []) ~start_us ~dur_us name =
  match !sinks with
  | [] -> ()
  | _ :: _ ->
    let stack = stack () in
    let trace_id, parent_id = identity_for_new stack in
    emit
      (Span
         { name; attrs; start_us; dur_us; depth = List.length !stack;
           trace_id; span_id = fresh_id (); parent_id; did = did () })

let log ?(attrs = []) level name =
  match !sinks with
  | [] -> ()
  | _ :: _ ->
    if severity level >= severity !min_level then begin
      let stack = stack () in
      let trace_id =
        match !stack with
        | fr :: _ -> fr.ftrace
        | [] -> (
          match !(Trace.ambient ()) with
          | Some c -> c.Trace.trace_id
          | None -> "" (* outside any trace *))
      in
      emit
        (Log
           { level; name; attrs; ts_us = now_us (); depth = List.length !stack;
             trace_id; did = did () })
    end

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  (* Counters and gauges are atomics, so worker domains can bump them
     without locks; histograms mutate several fields per observation and
     take [mu].  Registration, snapshot and reset also take [mu] so a
     snapshot never sees a half-registered metric. *)
  let now_ms_impl = now_ms (* the [?now_ms] labels below shadow it *)
  type counter = int Atomic.t
  type gauge = float Atomic.t

  (* One retained worst-in-window observation for a histogram bucket:
     enough to hop from a quantile to the trace that produced it. *)
  type exemplar = {
    ex_le : float;              (* the bucket's upper bound; +inf = overflow *)
    ex_value : float;
    ex_trace_id : string;
    ex_ts_ms : float;
  }

  type histogram = {
    bounds : float array;       (* inclusive upper bounds, increasing *)
    counts : int array;         (* length = Array.length bounds + 1 (overflow) *)
    mutable hsum : float;
    mutable hcount : int;
    hexemplars : exemplar option array; (* one slot per bucket, incl. overflow *)
    hmu : Mutex.t;
  }

  (* Info metrics: a constant-1 sample whose labels carry build/version
     facts ([dart_build_info{version="..."} 1] style). *)
  type metric =
    | C of counter
    | G of gauge
    | H of histogram
    | I of (string * string) list Atomic.t

  let registry : (string, metric) Hashtbl.t = Hashtbl.create 32
  let order : string list ref = ref [] (* reverse registration order *)
  let mu = Mutex.create ()

  let locked f =
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

  let register name m =
    Hashtbl.add registry name m;
    order := name :: !order

  let kind_error name =
    invalid_arg (Printf.sprintf "Obs.Metrics: %S already registered with another kind" name)

  let counter name =
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (C c) -> c
        | Some _ -> kind_error name
        | None ->
          let c = Atomic.make 0 in
          register name (C c);
          c)

  let incr c = ignore (Atomic.fetch_and_add c 1)
  let add c n = ignore (Atomic.fetch_and_add c n)
  let value c = Atomic.get c

  let gauge name =
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (G g) -> g
        | Some _ -> kind_error name
        | None ->
          let g = Atomic.make 0.0 in
          register name (G g);
          g)

  let set g v = Atomic.set g v
  let gauge_value g = Atomic.get g

  let default_buckets =
    [| 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0 |]

  let histogram ?(buckets = default_buckets) name =
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (H h) -> h
        | Some _ -> kind_error name
        | None ->
          let bounds = Array.copy buckets in
          Array.iteri
            (fun i b -> if i > 0 && b <= bounds.(i - 1) then
                invalid_arg "Obs.Metrics.histogram: buckets must be strictly increasing")
            bounds;
          let h =
            { bounds; counts = Array.make (Array.length bounds + 1) 0;
              hsum = 0.0; hcount = 0;
              hexemplars = Array.make (Array.length bounds + 1) None;
              hmu = Mutex.create () }
          in
          register name (H h);
          h)

  let slot_of h v =
    let nb = Array.length h.bounds in
    let rec slot i = if i >= nb then nb else if v <= h.bounds.(i) then i else slot (i + 1) in
    slot 0

  let observe h v =
    let i = slot_of h v in
    Mutex.lock h.hmu;
    h.counts.(i) <- h.counts.(i) + 1;
    h.hsum <- h.hsum +. v;
    h.hcount <- h.hcount + 1;
    Mutex.unlock h.hmu

  (* Exemplars age out so a quiet histogram does not pin a stale trace id
     forever: within the window the worst (largest) observation per
     bucket wins; past it any fresh observation replaces the slot. *)
  let exemplar_window = ref 60_000.0

  let set_exemplar_window_ms w =
    if w <= 0.0 then invalid_arg "Obs.Metrics.set_exemplar_window_ms: window must be > 0";
    exemplar_window := w

  let observe_ex ?now_ms ?trace_id h v =
    let i = slot_of h v in
    Mutex.lock h.hmu;
    h.counts.(i) <- h.counts.(i) + 1;
    h.hsum <- h.hsum +. v;
    h.hcount <- h.hcount + 1;
    (match trace_id with
     | Some tid when tid <> "" ->
       let now = match now_ms with Some n -> n | None -> now_ms_impl () in
       let fresh =
         { ex_le =
             (if i < Array.length h.bounds then h.bounds.(i) else Float.infinity);
           ex_value = v; ex_trace_id = tid; ex_ts_ms = now }
       in
       (match h.hexemplars.(i) with
        | None -> h.hexemplars.(i) <- Some fresh
        | Some old ->
          if now -. old.ex_ts_ms > !exemplar_window || v >= old.ex_value then
            h.hexemplars.(i) <- Some fresh)
     | _ -> ());
    Mutex.unlock h.hmu

  let exemplars ?now_ms h =
    let now = match now_ms with Some n -> n | None -> now_ms_impl () in
    Mutex.lock h.hmu;
    let live =
      Array.fold_right
        (fun e acc ->
          match e with
          | Some e when now -. e.ex_ts_ms <= !exemplar_window -> e :: acc
          | _ -> acc)
        h.hexemplars []
    in
    Mutex.unlock h.hmu;
    live

  let bucket_counts h =
    Mutex.lock h.hmu;
    let c = Array.copy h.counts in
    Mutex.unlock h.hmu;
    c

  let histogram_bounds h = Array.copy h.bounds

  let info name labels =
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (I r) -> Atomic.set r labels
        | Some _ -> kind_error name
        | None -> register name (I (Atomic.make labels)))

  let histogram_sum h =
    Mutex.lock h.hmu;
    let s = h.hsum in
    Mutex.unlock h.hmu;
    s

  let histogram_count h =
    Mutex.lock h.hmu;
    let c = h.hcount in
    Mutex.unlock h.hmu;
    c

  (* Quantile estimate from bucket counts with linear interpolation inside
     the bucket the rank falls in (the standard Prometheus histogram_quantile
     scheme).  The first bucket interpolates from 0; the overflow bucket has
     no upper bound so its answer clamps to the last finite bound. *)
  let quantile h q =
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let counts = bucket_counts h in
    let total = Array.fold_left ( + ) 0 counts in
    if total = 0 then 0.0
    else begin
      let rank = q *. float_of_int total in
      let nb = Array.length h.bounds in
      let rec find i cum =
        if i >= nb then nb
        else
          let cum' = cum + counts.(i) in
          if float_of_int cum' >= rank && counts.(i) > 0 then i
          else find (i + 1) cum'
      in
      let i = find 0 0 in
      if i >= nb then if nb = 0 then 0.0 else h.bounds.(nb - 1)
      else begin
        let lower = if i = 0 then 0.0 else h.bounds.(i - 1) in
        let upper = h.bounds.(i) in
        let prev_cum = ref 0 in
        for j = 0 to i - 1 do prev_cum := !prev_cum + counts.(j) done;
        lower
        +. (upper -. lower)
           *. ((rank -. float_of_int !prev_cum) /. float_of_int counts.(i))
      end
    end

  (* Prometheus text exposition (format version 0.0.4).  Metric names are
     sanitized (dots and other invalid characters become underscores);
     histograms render cumulative [_bucket{le=...}] series plus [_sum] /
     [_count] and derived [_p50]/[_p95]/[_p99] gauges so a plain curl shows
     latency quantiles without PromQL. *)
  let sanitize name =
    let b = Bytes.of_string name in
    Bytes.iteri
      (fun i c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
        | _ -> Bytes.set b i '_')
      b;
    let s = Bytes.to_string b in
    if s = "" then "_"
    else match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

  (* Prometheus label-value escaping: backslash, double quote and
     newline are the only characters the text format requires escaping. *)
  let escape_label_value s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let render_labels labels =
    match labels with
    | [] -> ""
    | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label_value v))
             labels)
      ^ "}"

  let pm_num f =
    if Float.is_nan f then "NaN"
    else if f = Float.infinity then "+Inf"
    else if f = Float.neg_infinity then "-Inf"
    else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.9g" f

  let prometheus () =
    let buf = Buffer.create 2048 in
    let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let entries =
      locked (fun () ->
          List.filter_map
            (fun n ->
              Option.map (fun m -> (n, m)) (Hashtbl.find_opt registry n))
            (List.rev !order))
    in
    List.iter
      (fun (n, m) ->
        let pn = sanitize n in
        match m with
        | C c ->
          p "# TYPE %s counter\n" pn;
          p "%s %d\n" pn (Atomic.get c)
        | G g ->
          p "# TYPE %s gauge\n" pn;
          p "%s %s\n" pn (pm_num (Atomic.get g))
        | H h ->
          Mutex.lock h.hmu;
          let counts = Array.copy h.counts in
          let hsum = h.hsum and hcount = h.hcount in
          Mutex.unlock h.hmu;
          p "# TYPE %s histogram\n" pn;
          let cum = ref 0 in
          Array.iteri
            (fun i b ->
              cum := !cum + counts.(i);
              p "%s_bucket{le=\"%s\"} %d\n" pn (pm_num b) !cum)
            h.bounds;
          cum := !cum + counts.(Array.length counts - 1);
          p "%s_bucket{le=\"+Inf\"} %d\n" pn !cum;
          p "%s_sum %s\n" pn (pm_num hsum);
          p "%s_count %d\n" pn hcount;
          List.iter
            (fun (suffix, q) ->
              p "# TYPE %s_%s gauge\n" pn suffix;
              p "%s_%s %s\n" pn suffix (pm_num (quantile h q)))
            [ ("p50", 0.5); ("p95", 0.95); ("p99", 0.99) ]
        | I r ->
          p "# TYPE %s gauge\n" pn;
          p "%s%s 1\n" pn (render_labels (Atomic.get r)))
      entries;
    Buffer.contents buf

  let exemplars_json ?now_ms () =
    let now = match now_ms with Some n -> n | None -> now_ms_impl () in
    let entries =
      locked (fun () ->
          List.filter_map
            (fun n ->
              match Hashtbl.find_opt registry n with
              | Some (H h) -> Some (n, h)
              | _ -> None)
            (List.rev !order))
    in
    Json.Obj
      (List.filter_map
         (fun (n, h) ->
           match exemplars ~now_ms:now h with
           | [] -> None
           | live ->
             Some
               ( n,
                 Json.List
                   (List.map
                      (fun e ->
                        Json.Obj
                          [ ("le",
                             if e.ex_le = Float.infinity then Json.Str "+inf"
                             else Json.Float e.ex_le);
                            ("value", Json.Float e.ex_value);
                            ("trace_id", Json.Str e.ex_trace_id);
                            ("ts_ms", Json.Float e.ex_ts_ms) ])
                      live) ))
         entries)

  let snapshot () =
    locked @@ fun () ->
    let names = List.rev !order in
    let pick f = List.filter_map f names in
    let counters =
      pick (fun n ->
          match Hashtbl.find_opt registry n with
          | Some (C c) -> Some (n, Json.Int (Atomic.get c))
          | _ -> None)
    in
    let gauges =
      pick (fun n ->
          match Hashtbl.find_opt registry n with
          | Some (G g) -> Some (n, Json.Float (Atomic.get g))
          | _ -> None)
    in
    let histograms =
      pick (fun n ->
          match Hashtbl.find_opt registry n with
          | Some (H h) ->
            Mutex.lock h.hmu;
            let counts = Array.copy h.counts in
            let hsum = h.hsum and hcount = h.hcount in
            Mutex.unlock h.hmu;
            let buckets =
              List.init (Array.length counts) (fun i ->
                  Json.Obj
                    [ ("le",
                       if i < Array.length h.bounds then Json.Float h.bounds.(i)
                       else Json.Str "+inf");
                      ("count", Json.Int counts.(i)) ])
            in
            Some
              (n,
               Json.Obj
                 [ ("buckets", Json.List buckets); ("sum", Json.Float hsum);
                   ("count", Json.Int hcount) ])
          | _ -> None)
    in
    let infos =
      pick (fun n ->
          match Hashtbl.find_opt registry n with
          | Some (I r) ->
            Some
              ( n,
                Json.Obj
                  (List.map (fun (k, v) -> (k, Json.Str v)) (Atomic.get r)) )
          | _ -> None)
    in
    Json.Obj
      ([ ("counters", Json.Obj counters); ("gauges", Json.Obj gauges);
         ("histograms", Json.Obj histograms) ]
       @ (if infos = [] then [] else [ ("infos", Json.Obj infos) ]))

  let reset () =
    locked @@ fun () ->
    Hashtbl.iter
      (fun _ m ->
        match m with
        | C c -> Atomic.set c 0
        | G g -> Atomic.set g 0.0
        | H h ->
          Mutex.lock h.hmu;
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.hsum <- 0.0;
          h.hcount <- 0;
          Array.fill h.hexemplars 0 (Array.length h.hexemplars) None;
          Mutex.unlock h.hmu
        | I _ -> ())
      registry
end

(* ------------------------------------------------------------------ *)
(* Timeline                                                            *)
(* ------------------------------------------------------------------ *)

module Timeline = struct
  (* A bounded (elapsed_us, value) series.  Offered samples are admitted
     every [stride]-th call; when the buffer fills, every other retained
     point is dropped and the stride doubles.  The retained set is a
     deterministic function of the offered sequence (no randomness), the
     memory is O(capacity) however long the solve runs, and the series
     always spans the full observation window (the oldest retained point
     only moves forward by halving, never by eviction). *)
  type t = {
    cap : int;
    t0 : float;
    times : float array;
    values : float array;
    mutable n : int;
    mutable stride : int;
    mutable seen : int;
  }

  let create ?(capacity = 256) () =
    let cap = max 2 capacity in
    { cap; t0 = now_us (); times = Array.make cap 0.0;
      values = Array.make cap 0.0; n = 0; stride = 1; seen = 0 }

  let halve t =
    (* Keep even indices (the older half of each pair), so the very first
       point — the start of the series — is always preserved. *)
    let k = ref 0 in
    let i = ref 0 in
    while !i < t.n do
      t.times.(!k) <- t.times.(!i);
      t.values.(!k) <- t.values.(!i);
      incr k;
      i := !i + 2
    done;
    t.n <- !k;
    t.stride <- t.stride * 2

  let push t el v =
    if t.n >= t.cap then halve t;
    t.times.(t.n) <- el;
    t.values.(t.n) <- v;
    t.n <- t.n + 1

  let record ?elapsed_us ?(force = false) t v =
    let el =
      match elapsed_us with Some e -> e | None -> Float.max 0.0 (now_us () -. t.t0)
    in
    let admit = force || t.seen mod t.stride = 0 in
    t.seen <- t.seen + 1;
    if admit then push t el v

  let length t = t.n
  let capacity t = t.cap
  let seen t = t.seen

  let points t = List.init t.n (fun i -> (t.times.(i), t.values.(i)))

  let to_json t =
    Json.List
      (List.init t.n (fun i ->
           Json.List [ Json.Float t.times.(i); Json.Float t.values.(i) ]))
end

(* ------------------------------------------------------------------ *)
(* Phases                                                              *)
(* ------------------------------------------------------------------ *)

module Phases = struct
  (* Named wall-clock accumulators for attributing one computation's time
     across its internal phases.  An assoc list in first-use order keeps
     serialization deterministic; instances are per-solve and single-domain
     (NOT thread-safe — unlike the registry above, these are values the
     caller owns, not process-wide state). *)
  type cell = { mutable pc_count : int; mutable pc_total_us : float }

  type t = { mutable entries : (string * cell) list (* reverse first-use order *) }

  let create () = { entries = [] }

  let cell t name =
    match List.assoc_opt name t.entries with
    | Some c -> c
    | None ->
      let c = { pc_count = 0; pc_total_us = 0.0 } in
      t.entries <- (name, c) :: t.entries;
      c

  let add_us t name us =
    let c = cell t name in
    c.pc_count <- c.pc_count + 1;
    c.pc_total_us <- c.pc_total_us +. Float.max 0.0 us

  let time t name f =
    let start = now_us () in
    Fun.protect ~finally:(fun () -> add_us t name (Float.max 0.0 (now_us () -. start))) f

  let count t name =
    match List.assoc_opt name t.entries with Some c -> c.pc_count | None -> 0

  let total_us t name =
    match List.assoc_opt name t.entries with
    | Some c -> c.pc_total_us
    | None -> 0.0

  let merge_into ~dst src =
    List.iter
      (fun (name, c) ->
        let d = cell dst name in
        d.pc_count <- d.pc_count + c.pc_count;
        d.pc_total_us <- d.pc_total_us +. c.pc_total_us)
      (List.rev src.entries)

  let to_list t =
    List.rev_map (fun (name, c) -> (name, (c.pc_count, c.pc_total_us))) t.entries

  let to_json t =
    Json.Obj
      (List.map
         (fun (name, (count, total)) ->
           (name,
            Json.Obj
              [ ("count", Json.Int count); ("total_us", Json.Float total) ]))
         (to_list t))
end
