(** OCaml runtime & GC telemetry: a ~1 Hz sampler feeding the
    {!Obs.Metrics} registry (and so Prometheus and the [stats] verb).

    Series (registered on first sample, not at load):

    - [runtime.gc.minor_collections] / [major_collections] /
      [compactions] / [forced_major_collections] — cumulative counts
      from [Gc.quick_stat], published as gauges (absolute values);
    - [runtime.gc.heap_words] / [top_heap_words] / [live_words] —
      heap size; live words come from [Gc.stat] (a heap walk) and are
      refreshed only on [live] samples (~once a minute by default);
    - [runtime.gc.minor_words] / [promoted_words] / [major_words] —
      cumulative allocation;
    - [runtime.gc.major_cycles] (counter) and
      [runtime.gc.major_cycle_gap_ms] — end-of-major-cycle alarm
      accounting: cycle count and wall-clock gap between cycle ends;
    - [runtime.heartbeat_lag_ms] (histogram) — how late each sample ran
      vs. the intended cadence.  This is the {e pause proxy}: a slice's
      own stop-the-world pause is not observable from inside the
      process, but it shows up as sampler lateness, so the p99 here
      bounds the pauses the process actually suffered;
    - [runtime.fds] — open file descriptors (via [/proc/self/fd];
      absent on platforms without procfs);
    - [runtime.uptime_s] — seconds since the first sample;
    - [dart_build_info] — constant-1 info metric with version labels. *)

val sample : ?now_ms:float -> ?interval_ms:float -> ?live:bool -> unit -> unit
(** Take one sample.  [now_ms] injects the clock (tests); [interval_ms]
    is the intended cadence — when given, the sample also observes
    heartbeat lag vs. the previous sample; [live] (default false) adds
    the expensive [Gc.stat] live-words reading. *)

val install_alarm : unit -> unit
(** Install the end-of-major-cycle [Gc.alarm] (idempotent). *)

val set_build_info : ?version:string -> ?extra:(string * string) list -> unit -> unit
(** Register/refresh [dart_build_info] with [version], OCaml version,
    word size, OS and backend labels, plus [extra] pairs. *)

val major_cycles : unit -> int
(** Major cycles completed since {!install_alarm}. *)

type sampler

val start : ?interval_s:float -> ?live_every:int -> unit -> sampler
(** Spawn a background thread sampling every [interval_s] (default 1.0)
    seconds; every [live_every]-th sample (default 60; 0 = never) is a
    [live] sample.  Also installs the alarm and build info. *)

val stop : sampler -> unit
(** Stop and join the sampler thread. *)
