(* Quickstart: the paper's running example in a dozen lines.

   We load the acquired cash budget of Figure 3 (where OCR read 250 instead
   of 220 for the 2003 total cash receipts), detect the inconsistency
   against constraints 1-3, and ask DART for a card-minimal repair.

   Run with:  dune exec examples/quickstart.exe *)

open Dart_datagen
open Dart_constraints
open Dart_repair

let () =
  (* The acquired (inconsistent) database of the paper's Figure 3. *)
  let db = Cash_budget.figure3 () in
  Format.printf "Acquired database:@.%a@." Dart_relational.Database.pp db;

  (* 1. Detect inconsistencies. *)
  List.iter
    (fun k ->
      match Agg_constraint.violations db k with
      | [] -> Format.printf "constraint %-18s satisfied@." k.Agg_constraint.name
      | thetas ->
        Format.printf "constraint %-18s VIOLATED (%d ground instance(s))@."
          k.Agg_constraint.name (List.length thetas))
    Cash_budget.constraints;

  (* 2. Compute a card-minimal repair via the MILP translation of Section 5. *)
  match Solver.card_minimal db Cash_budget.constraints with
  | Solver.Repaired (rho, _, stats) ->
    Format.printf "@.card-minimal repair (%d update(s), %d B&B nodes):@."
      (Repair.cardinality rho) stats.Solver.nodes;
    Format.printf "  %a@." (Repair.pp db) rho;
    let repaired = Update.apply db rho in
    Format.printf "@.repaired database consistent: %b@."
      (Agg_constraint.holds_all repaired Cash_budget.constraints)
  | Solver.Consistent -> Format.printf "already consistent@."
  | Solver.No_repair _ -> Format.printf "no repair exists@."
  | Solver.Node_budget_exceeded _ -> Format.printf "search truncated@."
  | Solver.Cancelled _ -> Format.printf "solve cancelled@."
