(* Using the DART library on your own schema: define a relational schema,
   write steady aggregate constraints against it, check steadiness, and
   repair a hand-made inconsistent instance.

   The domain here is expense reports: each report has line items and a
   declared total per trip; a per-department ceiling gives an inequality
   constraint (aggregate constraints are more general than equalities).

   Run with:  dune exec examples/custom_constraints.exe *)

open Dart_numeric
open Dart_relational
open Dart_constraints
open Dart_repair

let relation = "Expense"

let expense_schema =
  Schema.make_relation relation
    [| ("Trip", Value.String_dom); ("Item", Value.String_dom);
       ("Kind", Value.String_dom); ("Amount", Value.Int_dom) |]

let schema = Schema.make [ expense_schema ] [ (relation, "Amount") ]

(* chi(trip, kind) = SELECT sum(Amount) FROM Expense
                     WHERE Trip = trip AND Kind = kind *)
let chi =
  Aggregate.make ~name:"chi" ~rel:relation ~arity:2 ~expr:(Attr_expr.Attr "Amount")
    ~where:(Formula.conj [ Formula.attr_eq_param "Trip" 0; Formula.attr_eq_param "Kind" 1 ])

let sval s = Value.String s

(* For every trip: sum of line items equals the declared total. *)
let line_total =
  Agg_constraint.make ~name:"line-total" ~nvars:1
    ~body:[ { Agg_constraint.rel = relation;
              args = [| Agg_constraint.Var 0; Agg_constraint.Anon; Agg_constraint.Anon;
                        Agg_constraint.Anon |] } ]
    ~apps:
      [ { Agg_constraint.coeff = Rat.one; fn = chi;
          actuals = [| Agg_constraint.AVar 0; Agg_constraint.ACst (sval "line") |] };
        { Agg_constraint.coeff = Rat.minus_one; fn = chi;
          actuals = [| Agg_constraint.AVar 0; Agg_constraint.ACst (sval "total") |] } ]
    ~op:Agg_constraint.Eq ~bound:Rat.zero

(* Every trip's total is at most 1500 (an inequality constraint). *)
let ceiling =
  Agg_constraint.make ~name:"ceiling" ~nvars:1
    ~body:[ { Agg_constraint.rel = relation;
              args = [| Agg_constraint.Var 0; Agg_constraint.Anon; Agg_constraint.Anon;
                        Agg_constraint.Anon |] } ]
    ~apps:
      [ { Agg_constraint.coeff = Rat.one; fn = chi;
          actuals = [| Agg_constraint.AVar 0; Agg_constraint.ACst (sval "total") |] } ]
    ~op:Agg_constraint.Le ~bound:(Rat.of_int 1500)

let constraints = [ line_total; ceiling ]

let () =
  (* Both constraints are steady: the repair problem is an ILP. *)
  List.iter
    (fun k ->
      Format.printf "constraint %-12s steady: %b@." k.Agg_constraint.name
        (Steady.is_steady schema k))
    constraints;

  (* An inconsistent instance: the declared total (1200) does not match the
     line items (350 + 95 + 410 = 855), and a second trip busts the
     ceiling. *)
  let db = Database.create schema in
  let row db (trip, item, kind, amount) =
    Database.insert_row db relation [| sval trip; sval item; sval kind; Value.Int amount |]
  in
  let db =
    List.fold_left row db
      [ ("berlin", "flight", "line", 350); ("berlin", "hotel", "line", 95);
        ("berlin", "meals", "line", 410); ("berlin", "declared", "total", 1200);
        ("tokyo", "flight", "line", 900); ("tokyo", "hotel", "line", 700);
        ("tokyo", "declared", "total", 1600) ]
  in
  List.iter
    (fun k ->
      Format.printf "%s violated on %d ground instance(s)@." k.Agg_constraint.name
        (List.length (Agg_constraint.violations db k)))
    constraints;

  match Solver.card_minimal db constraints with
  | Solver.Repaired (rho, _, _) ->
    Format.printf "@.card-minimal repair (%d updates):@.  %a@."
      (Repair.cardinality rho) (Repair.pp db) rho;
    Format.printf "consistent after repair: %b@."
      (Agg_constraint.holds_all (Update.apply db rho) constraints)
  | Solver.Consistent -> Format.printf "already consistent@."
  | Solver.No_repair _ | Solver.Node_budget_exceeded _ | Solver.Cancelled _ ->
    Format.printf "no repair found@."
