(* Acquiring a web product catalog (the paper's other motivating context:
   "web sites publishing product catalogs").

   A consistent catalog with per-category subtotals and a grand total is
   rendered to HTML, an amount is corrupted, and the repairing module
   localizes the error from the subtotal constraints alone.  Also shows how
   the Kind column is never present in the document: the wrapper derives it
   from classification information, like the paper's Type attribute.

   Run with:  dune exec examples/catalog_web.exe *)

open Dart
open Dart_relational
open Dart_repair
open Dart_datagen
open Dart_rand

let () =
  let prng = Prng.create 41 in
  let truth = Catalog.generate prng in
  let scenario = Catalog_scenario.scenario in

  (* A clean acquisition to key the operator oracle. *)
  let clean = Pipeline.acquire scenario (Catalog.to_html truth) in
  Format.printf "catalog: %d rows (%d categories + grand total)@."
    (Database.cardinality truth) (List.length Catalog.categories);

  (* Corrupt two amounts before rendering — a digit-level OCR error. *)
  let corrupted, log = Catalog.corrupt ~errors:2 prng truth in
  List.iter
    (fun (tid, v, v') -> Format.printf "  injected error: tuple %d, %d -> %d@." tid v v')
    log;

  let acq = Pipeline.acquire scenario (Catalog.to_html corrupted) in
  Format.printf "acquired %d rows; consistent=%b@."
    (Database.cardinality acq.Pipeline.db)
    (Pipeline.consistent scenario acq.Pipeline.db);

  (* One-shot card-minimal repair (no operator). *)
  (match Pipeline.repair scenario acq.Pipeline.db with
   | Solver.Repaired (rho, _, stats) ->
     Format.printf "card-minimal repair: %d update(s), %d component(s)@."
       (Repair.cardinality rho) stats.Solver.components;
     Format.printf "  %a@." (Repair.pp acq.Pipeline.db) rho
   | Solver.Consistent -> Format.printf "corruption was self-consistent@."
   | _ -> Format.printf "no repair found@.");

  (* Supervised repair recovers the exact source values. *)
  let operator = Validation.oracle ~truth:clean.Pipeline.db in
  let outcome = Pipeline.validate scenario ~operator acq.Pipeline.db in
  Format.printf "validation: converged=%b iterations=%d examined=%d@."
    outcome.Validation.converged outcome.Validation.iterations outcome.Validation.examined;
  Format.printf "recovered ground truth: %b@."
    (List.for_all2 Tuple.equal_values
       (Database.tuples_of clean.Pipeline.db Catalog.relation_name)
       (Database.tuples_of outcome.Validation.final_db Catalog.relation_name))
